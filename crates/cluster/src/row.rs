//! Row-level configuration (Table 2 and §6.4).

use polca_gpu::GpuSpec;
use polca_llm::{InferenceModel, ModelSpec};

use crate::request::Priority;
use crate::server::InferenceServer;
use crate::server_spec::ServerSpec;

/// Configuration of one PDU-fed row of inference servers.
///
/// The paper's evaluation row (Table 2) holds 40 DGX-A100 servers, all
/// serving BLOOM-176B, with telemetry every 2 s. Power is provisioned at
/// the servers' rated draw; POLCA's oversubscription adds servers under
/// the *same* row budget. A row is the *bottom* of the power hierarchy,
/// not the top: rows aggregate into PDUs, PDUs into datacenters, and
/// datacenters into a site (see [`crate::hierarchy::SiteHierarchy`] and
/// [`crate::site::SiteSim`]), each level with its own budget knobs.
#[derive(Debug, Clone)]
pub struct RowConfig {
    /// Servers the row was originally provisioned for.
    pub base_servers: usize,
    /// Extra servers deployed via oversubscription, as a fraction of
    /// `base_servers` (0.30 = "30 % more servers").
    pub added_fraction: f64,
    /// The server hardware.
    pub server_spec: ServerSpec,
    /// The model every server serves.
    pub model: ModelSpec,
    /// Fraction of servers dedicated to low-priority workloads.
    pub low_priority_fraction: f64,
    /// Per-server request buffer depth (§6.6: one).
    pub buffer_capacity: usize,
    /// §5.2 phase-aware power management: run token phases at this SM
    /// clock (prompt phases keep the full clock). `None` disables it.
    pub phase_aware_token_mhz: Option<f64>,
}

impl RowConfig {
    /// The production inference row of Table 2 / §6.4: 40 DGX-A100
    /// servers serving BLOOM-176B, 50:50 priority mix, one-request
    /// buffers.
    pub fn paper_inference_row() -> Self {
        RowConfig {
            base_servers: 40,
            added_fraction: 0.0,
            server_spec: ServerSpec::dgx_a100(),
            model: ModelSpec::bloom_176b(),
            low_priority_fraction: 0.5,
            buffer_capacity: 1,
            phase_aware_token_mhz: None,
        }
    }

    /// Enables §5.2 phase-aware power management on every server: token
    /// phases run at `token_mhz`, prompt phases at full clock.
    ///
    /// # Panics
    ///
    /// Panics if `token_mhz` is outside the GPU's clock range.
    pub fn with_phase_aware(mut self, token_mhz: f64) -> Self {
        assert!(
            self.server_spec.gpu.clock_in_range(token_mhz),
            "phase-aware token clock outside device range"
        );
        self.phase_aware_token_mhz = Some(token_mhz);
        self
    }

    /// Returns this configuration with `fraction` more servers deployed
    /// (0.30 = +30 %).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is negative.
    pub fn with_added_servers(mut self, fraction: f64) -> Self {
        assert!(fraction >= 0.0, "added fraction cannot be negative");
        self.added_fraction = fraction;
        self
    }

    /// Returns this configuration with a different low-priority server
    /// share (Figure 15b sweeps this).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn with_low_priority_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "low-priority fraction must be in [0, 1]"
        );
        self.low_priority_fraction = fraction;
        self
    }

    /// Total servers deployed (base plus oversubscribed).
    pub fn total_servers(&self) -> usize {
        (self.base_servers as f64 * (1.0 + self.added_fraction)).round() as usize
    }

    /// The row's fixed power budget in watts.
    ///
    /// The row is provisioned for the *base* deployment at the servers'
    /// observed peak draw plus a 5 % safety margin — i.e. after the §5
    /// derating step (rated DGX-A100 power is 6.5 kW but "the peak power
    /// on our machine never exceeded 5700 W"). This is the budget against
    /// which Table 4 reports 79 % peak utilization and POLCA's
    /// oversubscription squeezes in extra servers.
    pub fn provisioned_watts(&self) -> f64 {
        self.base_servers as f64 * self.server_spec.peak_power_watts() * 1.05
    }

    /// Number of low-priority servers in the row.
    pub fn low_priority_servers(&self) -> usize {
        (self.total_servers() as f64 * self.low_priority_fraction).round() as usize
    }

    /// The GPU model in this row.
    pub fn gpu(&self) -> &GpuSpec {
        &self.server_spec.gpu
    }

    /// Builds the row's servers with priorities interleaved so that both
    /// classes spread across the row (the cloud allocator "can make
    /// power-oversubscription aware allocation to ensure a good mix of
    /// high and low-priority jobs in every row", §6.3).
    ///
    /// # Panics
    ///
    /// Panics if the model does not fit its Table 3 GPU allocation on the
    /// row's GPU type.
    pub fn build_servers(&self) -> Vec<InferenceServer> {
        let total = self.total_servers();
        let n_low = self.low_priority_servers();
        let deployment = InferenceModel::new(self.model.clone(), self.server_spec.gpu.clone())
            .expect("row model must fit its GPU allocation");
        (0..total)
            .map(|id| {
                // Interleave low-priority servers evenly by accumulating
                // the fraction (Bresenham-style).
                let low_before = (id as f64 * n_low as f64 / total as f64).floor() as usize;
                let low_after = ((id + 1) as f64 * n_low as f64 / total as f64).floor() as usize;
                let priority = if low_after > low_before {
                    Priority::Low
                } else {
                    Priority::High
                };
                let mut server = InferenceServer::new(
                    id,
                    priority,
                    self.server_spec.clone(),
                    deployment.clone(),
                    self.buffer_capacity,
                );
                server.set_phase_aware(self.phase_aware_token_mhz);
                server
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_row_matches_table2() {
        let row = RowConfig::paper_inference_row();
        assert_eq!(row.base_servers, 40);
        assert_eq!(row.total_servers(), 40);
        // Peak-provisioned (post-derating) budget: well under the rated
        // 40 × 6.5 kW = 260 kW, but above 40 × observed peak.
        let budget = row.provisioned_watts();
        assert!(budget < 260_000.0, "budget {budget}");
        assert!(budget > 40.0 * row.server_spec.peak_power_watts());
        assert_eq!(row.buffer_capacity, 1);
    }

    #[test]
    fn thirty_percent_oversubscription_adds_twelve_servers() {
        let row = RowConfig::paper_inference_row().with_added_servers(0.30);
        assert_eq!(row.total_servers(), 52);
        // The budget does not grow with the servers.
        assert_eq!(
            row.provisioned_watts(),
            RowConfig::paper_inference_row().provisioned_watts()
        );
    }

    #[test]
    fn priority_split_is_even_and_interleaved() {
        let row = RowConfig::paper_inference_row();
        let servers = row.build_servers();
        let low = servers
            .iter()
            .filter(|s| s.priority() == Priority::Low)
            .count();
        assert_eq!(low, 20);
        // Interleaving: no run of 4+ same-priority servers for a 50:50 mix.
        let mut run = 1;
        for w in servers.windows(2) {
            if w[0].priority() == w[1].priority() {
                run += 1;
                assert!(run < 4, "priorities are clumped");
            } else {
                run = 1;
            }
        }
    }

    #[test]
    fn low_priority_fraction_extremes() {
        let all_high = RowConfig::paper_inference_row().with_low_priority_fraction(0.0);
        assert!(all_high
            .build_servers()
            .iter()
            .all(|s| s.priority() == Priority::High));
        let all_low = RowConfig::paper_inference_row().with_low_priority_fraction(1.0);
        assert!(all_low
            .build_servers()
            .iter()
            .all(|s| s.priority() == Priority::Low));
    }

    #[test]
    fn server_ids_are_sequential() {
        let servers = RowConfig::paper_inference_row().build_servers();
        for (i, s) in servers.iter().enumerate() {
            assert_eq!(s.id(), i);
        }
    }

    #[test]
    #[should_panic(expected = "cannot be negative")]
    fn negative_added_fraction_rejected() {
        let _ = RowConfig::paper_inference_row().with_added_servers(-0.1);
    }
}
