//! Property-based tests for the LLM workload models.

use proptest::prelude::*;

use polca_gpu::{DvfsModel, GpuSpec};
use polca_llm::{DType, InferenceConfig, InferenceModel, ModelSpec, TrainingJob};

fn models() -> impl Strategy<Value = ModelSpec> {
    prop_oneof![
        Just(ModelSpec::flan_t5_xxl()),
        Just(ModelSpec::gpt_neox_20b()),
        Just(ModelSpec::opt_30b()),
        Just(ModelSpec::llama2_70b()),
        Just(ModelSpec::bloom_176b()),
    ]
}

fn configs() -> impl Strategy<Value = InferenceConfig> {
    (1u32..16_384, 1u32..8192, 1u32..32).prop_map(|(i, o, b)| InferenceConfig::new(i, o, b))
}

proptest! {
    #[test]
    fn profiles_are_well_formed(model in models(), cfg in configs()) {
        let d = InferenceModel::new(model, GpuSpec::a100_80gb()).unwrap();
        let p = d.profile(&cfg);
        prop_assert!(p.prompt.duration_s > 0.0);
        prop_assert!(p.token.duration_s > 0.0);
        prop_assert!((0.0..=1.0).contains(&p.prompt.intensity));
        prop_assert!((0.0..=1.0).contains(&p.token.intensity));
        prop_assert!((0.0..=1.0).contains(&p.prompt.compute_fraction));
        prop_assert!((0.0..=1.0).contains(&p.token.compute_fraction));
        prop_assert_eq!(p.tokens_generated, cfg.output_tokens as u64 * cfg.batch as u64);
        // Prompt is always the more compute-bound phase.
        prop_assert!(p.prompt.compute_fraction >= p.token.compute_fraction);
    }

    #[test]
    fn latency_is_monotone_in_output_tokens(model in models(), input in 1u32..8192, o1 in 1u32..4096, o2 in 1u32..4096) {
        let d = InferenceModel::new(model, GpuSpec::a100_80gb()).unwrap();
        let (lo, hi) = if o1 <= o2 { (o1, o2) } else { (o2, o1) };
        let t_lo = d.profile(&InferenceConfig::new(input, lo, 1)).total_time_s();
        let t_hi = d.profile(&InferenceConfig::new(input, hi, 1)).total_time_s();
        prop_assert!(t_lo <= t_hi + 1e-12);
    }

    #[test]
    fn peak_intensity_is_monotone_in_input(model in models(), i1 in 1u32..16_384, i2 in 1u32..16_384) {
        let d = InferenceModel::new(model, GpuSpec::a100_80gb()).unwrap();
        let (lo, hi) = if i1 <= i2 { (i1, i2) } else { (i2, i1) };
        let p_lo = d.profile(&InferenceConfig::new(lo, 64, 1)).peak_intensity();
        let p_hi = d.profile(&InferenceConfig::new(hi, 64, 1)).peak_intensity();
        prop_assert!(p_lo <= p_hi + 1e-12);
    }

    #[test]
    fn slowdown_at_reduced_clock_never_speeds_up(model in models(), cfg in configs(), r in 0.2..1.0f64) {
        let d = InferenceModel::new(model, GpuSpec::a100_80gb()).unwrap();
        let dvfs = DvfsModel::default();
        let p = d.profile(&cfg);
        prop_assert!(p.total_time_at_clock(&dvfs, r) >= p.total_time_s() - 1e-9);
    }

    #[test]
    fn mean_intensity_is_between_phase_intensities(model in models(), cfg in configs()) {
        let d = InferenceModel::new(model, GpuSpec::a100_80gb()).unwrap();
        let p = d.profile(&cfg);
        let lo = p.prompt.intensity.min(p.token.intensity);
        let hi = p.prompt.intensity.max(p.token.intensity);
        let mean = p.mean_intensity();
        prop_assert!(mean >= lo - 1e-12 && mean <= hi + 1e-12);
    }

    #[test]
    fn gpus_required_is_monotone_in_bytes(model in models()) {
        let gpu = GpuSpec::a100_80gb();
        prop_assert!(DType::Int8.gpus_required(&model, &gpu) <= DType::Fp16.gpus_required(&model, &gpu));
        prop_assert!(DType::Fp16.gpus_required(&model, &gpu) <= DType::Fp32.gpus_required(&model, &gpu));
    }

    #[test]
    fn training_throughput_scale_is_in_unit_interval(model in models(), r in 0.2..=1.0f64) {
        let job = TrainingJob::fine_tuning(&model);
        let dvfs = DvfsModel::default();
        let s = job.throughput_scale(&dvfs, r);
        prop_assert!(s > 0.0 && s <= 1.0 + 1e-12);
    }

    #[test]
    fn training_phases_partition_the_iteration(model in models()) {
        let job = TrainingJob::fine_tuning(&model);
        let total: f64 = job.phases().iter().map(|p| p.duration_frac).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for phase in job.phases() {
            prop_assert!((0.0..=1.0).contains(&phase.intensity));
            prop_assert!((0.0..=1.0).contains(&phase.compute_fraction));
        }
    }
}
