//! Quantization datatypes and their resource effects (§4.2).
//!
//! The paper runs Llama2-70B/13B with FP32, FP16 and INT8 weights via
//! `bitsandbytes` and finds (Insight 6): quantization reduces the GPU
//! count and therefore total power; FP16 is the fastest *and* draws the
//! highest peak power per GPU because it hits the tensor cores with
//! highly optimized kernels; FP32 and INT8 are slower due to footprint
//! and unoptimized kernels respectively.

use crate::zoo::ModelSpec;
use polca_gpu::GpuSpec;

/// Model weight datatype.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DType {
    /// 32-bit IEEE floating point.
    Fp32,
    /// 16-bit floating point (tensor-core native; the deployment default).
    #[default]
    Fp16,
    /// 8-bit integer quantization (`LLM.int8()`).
    Int8,
}

impl DType {
    /// Bytes per parameter.
    pub const fn bytes_per_param(self) -> f64 {
        match self {
            DType::Fp32 => 4.0,
            DType::Fp16 => 2.0,
            DType::Int8 => 1.0,
        }
    }

    /// Effective fraction of the GPU's peak FP16 tensor throughput this
    /// datatype achieves. FP16 kernels are "highly optimized" (1.0); FP32
    /// runs at half tensor rate with extra memory pressure; INT8 suffers
    /// from "less optimized CUDA kernels" (§4.2, \[18\]).
    pub const fn compute_efficiency(self) -> f64 {
        match self {
            DType::Fp32 => 0.45,
            DType::Fp16 => 1.0,
            DType::Int8 => 0.55,
        }
    }

    /// Effective fraction of peak HBM bandwidth this datatype's kernels
    /// achieve during token sampling. INT8's dequantization overhead
    /// ("less optimized CUDA kernels", §4.2) more than cancels its
    /// smaller footprint, which is why `bitsandbytes` INT8 runs *slower*
    /// than FP16 despite moving half the bytes.
    pub const fn kernel_bandwidth_efficiency(self) -> f64 {
        match self {
            DType::Fp32 => 1.0,
            DType::Fp16 => 1.0,
            DType::Int8 => 0.45,
        }
    }

    /// Relative peak-power factor per GPU: FP16's tensor-core kernels
    /// saturate the power envelope hardest (§4.2).
    pub const fn peak_power_factor(self) -> f64 {
        match self {
            DType::Fp32 => 0.93,
            DType::Fp16 => 1.0,
            DType::Int8 => 0.88,
        }
    }

    /// Number of GPUs needed to serve `model` with this datatype on
    /// `gpu`, accounting for weights plus a fixed activation/KV-cache
    /// reserve (the footnote in §4.2: "beyond model weights, extra state
    /// is needed for activations, KV cache, etc.").
    ///
    /// Reproduces the paper's Llama2-70B observations: FP32 → 4 GPUs,
    /// FP16 → 2, INT8 → 2 (A100-80GB), and all Llama2-13B variants → 1.
    pub fn gpus_required(self, model: &ModelSpec, gpu: &GpuSpec) -> usize {
        const RUNTIME_RESERVE_GIB: f64 = 20.0;
        let weights_gib = model.params_b * self.bytes_per_param();
        let total = weights_gib + RUNTIME_RESERVE_GIB;
        (total / gpu.memory_gib).ceil() as usize
    }

    /// All datatypes in the paper's comparison order.
    pub const fn all() -> [DType; 3] {
        [DType::Fp32, DType::Fp16, DType::Int8]
    }

    /// Display name as used in the paper.
    pub const fn name(self) -> &'static str {
        match self {
            DType::Fp32 => "FP32",
            DType::Fp16 => "FP16",
            DType::Int8 => "INT8",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama2_70b_gpu_counts_match_paper() {
        let m = ModelSpec::llama2_70b();
        let gpu = GpuSpec::a100_80gb();
        assert_eq!(DType::Fp32.gpus_required(&m, &gpu), 4);
        assert_eq!(DType::Fp16.gpus_required(&m, &gpu), 2);
        assert_eq!(DType::Int8.gpus_required(&m, &gpu), 2);
    }

    #[test]
    fn llama2_13b_fits_one_gpu_for_all_dtypes() {
        let m = ModelSpec::llama2_13b();
        let gpu = GpuSpec::a100_80gb();
        for dt in DType::all() {
            assert_eq!(dt.gpus_required(&m, &gpu), 1, "{}", dt.name());
        }
    }

    #[test]
    fn fp16_is_fastest_and_peakiest() {
        assert!(DType::Fp16.compute_efficiency() > DType::Fp32.compute_efficiency());
        assert!(DType::Fp16.compute_efficiency() > DType::Int8.compute_efficiency());
        assert!(DType::Fp16.peak_power_factor() >= DType::Fp32.peak_power_factor());
        assert!(DType::Fp16.peak_power_factor() >= DType::Int8.peak_power_factor());
    }

    #[test]
    fn bytes_per_param() {
        assert_eq!(DType::Fp32.bytes_per_param(), 4.0);
        assert_eq!(DType::Fp16.bytes_per_param(), 2.0);
        assert_eq!(DType::Int8.bytes_per_param(), 1.0);
    }

    #[test]
    fn default_is_fp16() {
        assert_eq!(DType::default(), DType::Fp16);
    }

    #[test]
    fn quantization_reduces_gpu_count_monotonically() {
        let gpu = GpuSpec::a100_80gb();
        for m in ModelSpec::all() {
            assert!(
                DType::Int8.gpus_required(&m, &gpu) <= DType::Fp16.gpus_required(&m, &gpu),
                "{}",
                m.name
            );
            assert!(DType::Fp16.gpus_required(&m, &gpu) <= DType::Fp32.gpus_required(&m, &gpu));
        }
    }
}
