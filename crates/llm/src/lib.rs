//! Analytical LLM workload models.
//!
//! The paper characterizes seven open-source LLMs (Table 3) across the
//! three transformer architectures, profiling fine-tuning (training) and
//! inference on DGX-A100 machines. This crate substitutes those runs with
//! analytical models derived from first principles and calibrated to the
//! paper's measurements:
//!
//! * [`zoo`] — the model zoo of Table 3 (RoBERTa, Llama2-13B/70B,
//!   GPT-NeoX-20B, OPT-30B, BLOOM-176B, Flan-T5 XXL),
//! * [`dtype`] — FP32/FP16/INT8 quantization effects on memory footprint,
//!   GPU count and kernel efficiency (§4.2 "Impact of datatypes"),
//! * [`inference`] — the two-phase inference model: compute-bound parallel
//!   *prompt processing* (brief, spikes at or above TDP) and memory-bandwidth-
//!   bound sequential *token sampling* (long, stable, lower power) —
//!   Insight 4,
//! * [`training`] — the iteration model with alternating computation- and
//!   communication-intensive phases that produce the power swings of
//!   Figure 4 — Insight 2.
//!
//! # Examples
//!
//! ```
//! use polca_gpu::GpuSpec;
//! use polca_llm::{InferenceConfig, InferenceModel, ModelSpec};
//!
//! let bloom = InferenceModel::new(ModelSpec::bloom_176b(), GpuSpec::a100_80gb()).unwrap();
//! let profile = bloom.profile(&InferenceConfig::new(2048, 256, 1));
//! // Prompt phase draws more power but is much shorter than token phase.
//! assert!(profile.prompt.intensity > profile.token.intensity);
//! assert!(profile.prompt.duration_s < profile.token.duration_s);
//! ```

pub mod dtype;
pub mod inference;
pub mod training;
pub mod zoo;

pub use dtype::DType;
pub use inference::{
    BatchComposition, InferenceConfig, InferenceModel, ModelFitError, PhaseProfile, RequestProfile,
};
pub use training::{TrainingJob, TrainingPhase};
pub use zoo::{Architecture, ModelSpec};
