//! The model zoo of Table 3.

/// Transformer architecture family (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// Encoder-only (bi-directional self-attention), e.g. RoBERTa.
    Encoder,
    /// Decoder-only (masked self-attention, generative), e.g. GPT/BLOOM.
    Decoder,
    /// Encoder-decoder, e.g. Flan-T5.
    EncoderDecoder,
}

/// Static description of one LLM from the paper's Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Model name as printed in the paper's figures.
    pub name: &'static str,
    /// Parameter count in billions.
    pub params_b: f64,
    /// Architecture family.
    pub architecture: Architecture,
    /// GPUs used for FP16 inference in the paper's deployment (Table 3).
    pub inference_gpus: usize,
    /// Whether the paper only ran inference for this model (the `*`
    /// entries of Table 3).
    pub inference_only: bool,
    /// Transformer layer count (decoder layers for decoder-only models).
    pub n_layers: u32,
    /// Hidden dimension.
    pub hidden_dim: u32,
}

impl ModelSpec {
    /// RoBERTa-large, 355 M parameters, encoder-only.
    pub const fn roberta() -> Self {
        ModelSpec {
            name: "RoBERTa",
            params_b: 0.355,
            architecture: Architecture::Encoder,
            inference_gpus: 1,
            inference_only: false,
            n_layers: 24,
            hidden_dim: 1024,
        }
    }

    /// Llama2-13B, decoder-only.
    pub const fn llama2_13b() -> Self {
        ModelSpec {
            name: "Llama2-13B",
            params_b: 13.0,
            architecture: Architecture::Decoder,
            inference_gpus: 1,
            inference_only: true,
            n_layers: 40,
            hidden_dim: 5120,
        }
    }

    /// Llama2-70B, decoder-only.
    pub const fn llama2_70b() -> Self {
        ModelSpec {
            name: "Llama2-70B",
            params_b: 70.0,
            architecture: Architecture::Decoder,
            inference_gpus: 4,
            inference_only: true,
            n_layers: 80,
            hidden_dim: 8192,
        }
    }

    /// GPT-NeoX-20B, decoder-only.
    pub const fn gpt_neox_20b() -> Self {
        ModelSpec {
            name: "GPT-NeoX",
            params_b: 20.0,
            architecture: Architecture::Decoder,
            inference_gpus: 2,
            inference_only: false,
            n_layers: 44,
            hidden_dim: 6144,
        }
    }

    /// OPT-30B, decoder-only.
    pub const fn opt_30b() -> Self {
        ModelSpec {
            name: "OPT",
            params_b: 30.0,
            architecture: Architecture::Decoder,
            inference_gpus: 4,
            inference_only: true,
            n_layers: 48,
            hidden_dim: 7168,
        }
    }

    /// BLOOM-176B, decoder-only — the paper's worst-case inference
    /// workload ("BLOOM-176B has the highest performance impact from
    /// capping", §6.4) and the model behind the POLCA evaluation.
    pub const fn bloom_176b() -> Self {
        ModelSpec {
            name: "BLOOM",
            params_b: 176.0,
            architecture: Architecture::Decoder,
            inference_gpus: 8,
            inference_only: true,
            n_layers: 70,
            hidden_dim: 14336,
        }
    }

    /// Flan-T5 XXL, 11 B parameters, encoder-decoder.
    pub const fn flan_t5_xxl() -> Self {
        ModelSpec {
            name: "Flan-T5",
            params_b: 11.0,
            architecture: Architecture::EncoderDecoder,
            inference_gpus: 1,
            inference_only: false,
            n_layers: 24,
            hidden_dim: 4096,
        }
    }

    /// All models of Table 3.
    pub fn all() -> Vec<ModelSpec> {
        vec![
            Self::roberta(),
            Self::llama2_13b(),
            Self::llama2_70b(),
            Self::gpt_neox_20b(),
            Self::opt_30b(),
            Self::bloom_176b(),
            Self::flan_t5_xxl(),
        ]
    }

    /// The five models the inference characterization plots (Figures 6
    /// and 8), in figure order.
    pub fn inference_lineup() -> Vec<ModelSpec> {
        vec![
            Self::flan_t5_xxl(),
            Self::gpt_neox_20b(),
            Self::opt_30b(),
            Self::llama2_70b(),
            Self::bloom_176b(),
        ]
    }

    /// The three models the training characterization plots (Figures 4
    /// and 5), in figure order.
    pub fn training_lineup() -> Vec<ModelSpec> {
        vec![Self::roberta(), Self::gpt_neox_20b(), Self::flan_t5_xxl()]
    }

    /// Parameter count in absolute units.
    pub fn params(&self) -> f64 {
        self.params_b * 1e9
    }

    /// KV-cache bytes per token at `bytes_per_element` precision:
    /// key + value vectors per layer (`2 × n_layers × hidden_dim`).
    /// This sizes the state that phase-splitting deployments (§5.2,
    /// Splitwise \[49\]) must ship from prompt to token GPUs.
    pub fn kv_bytes_per_token(&self, bytes_per_element: f64) -> f64 {
        2.0 * self.n_layers as f64 * self.hidden_dim as f64 * bytes_per_element
    }

    /// A size factor in `(0, 1]` relative to the largest characterized
    /// model (BLOOM-176B), used to scale power intensities: larger models
    /// saturate the GPU more completely.
    pub fn relative_scale(&self) -> f64 {
        (self.params_b / 176.0).powf(0.3).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_inventory() {
        let all = ModelSpec::all();
        assert_eq!(all.len(), 7);
        // Table 3 GPU counts.
        let by_name = |n: &str| all.iter().find(|m| m.name == n).unwrap().clone();
        assert_eq!(by_name("BLOOM").inference_gpus, 8);
        assert_eq!(by_name("OPT").inference_gpus, 4);
        assert_eq!(by_name("GPT-NeoX").inference_gpus, 2);
        assert_eq!(by_name("Flan-T5").inference_gpus, 1);
        assert_eq!(by_name("RoBERTa").inference_gpus, 1);
    }

    #[test]
    fn inference_only_markers_match_table3() {
        assert!(ModelSpec::bloom_176b().inference_only);
        assert!(ModelSpec::opt_30b().inference_only);
        assert!(ModelSpec::llama2_70b().inference_only);
        assert!(!ModelSpec::roberta().inference_only);
        assert!(!ModelSpec::gpt_neox_20b().inference_only);
        assert!(!ModelSpec::flan_t5_xxl().inference_only);
    }

    #[test]
    fn lineups_are_subsets_of_all() {
        let all = ModelSpec::all();
        for m in ModelSpec::inference_lineup()
            .iter()
            .chain(ModelSpec::training_lineup().iter())
        {
            assert!(all.contains(m), "{} missing from zoo", m.name);
        }
    }

    #[test]
    fn architectures_cover_all_three_families() {
        let all = ModelSpec::all();
        for arch in [
            Architecture::Encoder,
            Architecture::Decoder,
            Architecture::EncoderDecoder,
        ] {
            assert!(all.iter().any(|m| m.architecture == arch));
        }
    }

    #[test]
    fn relative_scale_is_monotonic_in_size() {
        let models = ModelSpec::all();
        for a in &models {
            for b in &models {
                if a.params_b < b.params_b {
                    assert!(a.relative_scale() <= b.relative_scale());
                }
            }
        }
        assert_eq!(ModelSpec::bloom_176b().relative_scale(), 1.0);
    }
}
