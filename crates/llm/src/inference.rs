//! The two-phase inference model (Insight 4).
//!
//! An LLM inference request has a *prompt processing* phase — all input
//! tokens contextualized in parallel, compute-intensive, brief, power
//! spiking at or above TDP — followed by a *token sampling* phase —
//! sequential auto-regressive generation reusing the KV-cache, memory-
//! bandwidth-bound, long, drawing stable lower power (Figure 6).
//!
//! The analytics follow the standard transformer roofline:
//!
//! * prompt compute time ≈ `2 · params · input_tokens · batch / throughput`,
//! * per-token time ≈ `params · bytes_per_param / memory_bandwidth`
//!   (every generated token streams the full weight set from HBM),
//!
//! with per-phase compute-bound fractions derived from the same terms, so
//! the DVFS slowdown model in `polca-gpu` automatically hurts prompt
//! phases more than token phases (Insight 7).

use std::fmt;

use polca_gpu::{DvfsModel, Gpu, GpuSpec};
use polca_stats::TimeSeries;

use crate::dtype::DType;
use crate::zoo::ModelSpec;

/// Fraction of peak tensor throughput achieved during prompt processing
/// (model-FLOPs-utilization of a well-tuned serving stack).
const PROMPT_MFU: f64 = 0.45;
/// Fraction of peak HBM bandwidth achieved during token sampling.
const TOKEN_BW_EFFICIENCY: f64 = 0.6;
/// Extra HBM needed beyond weights for activations and KV-cache, in GiB.
const RUNTIME_RESERVE_GIB: f64 = 20.0;

/// One inference request configuration (the knobs of §2 and Figure 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceConfig {
    /// Prompt length in tokens.
    pub input_tokens: u32,
    /// Number of generated tokens.
    pub output_tokens: u32,
    /// Requests processed together.
    pub batch: u32,
    /// Weight datatype.
    pub dtype: DType,
}

impl InferenceConfig {
    /// Creates an FP16 configuration.
    ///
    /// # Panics
    ///
    /// Panics if `input_tokens`, `output_tokens` or `batch` is zero.
    pub fn new(input_tokens: u32, output_tokens: u32, batch: u32) -> Self {
        assert!(input_tokens > 0, "input_tokens must be positive");
        assert!(output_tokens > 0, "output_tokens must be positive");
        assert!(batch > 0, "batch must be positive");
        InferenceConfig {
            input_tokens,
            output_tokens,
            batch,
            dtype: DType::Fp16,
        }
    }

    /// Returns this configuration with a different datatype.
    pub fn with_dtype(mut self, dtype: DType) -> Self {
        self.dtype = dtype;
        self
    }
}

/// Duration, power intensity and compute-boundedness of one phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseProfile {
    /// Phase duration in seconds at the maximum SM clock.
    pub duration_s: f64,
    /// Workload intensity in `[0, 1]` (input to `Gpu::power_at`).
    pub intensity: f64,
    /// Compute-bound fraction in `[0, 1]` (input to `DvfsModel::slowdown`).
    pub compute_fraction: f64,
}

impl PhaseProfile {
    /// Phase duration at SM clock ratio `r`.
    pub fn duration_at_clock(&self, dvfs: &DvfsModel, r: f64) -> f64 {
        self.duration_s * dvfs.slowdown(r, self.compute_fraction)
    }
}

/// The full prompt + token profile of one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestProfile {
    /// Prompt-processing phase.
    pub prompt: PhaseProfile,
    /// Token-sampling phase (all generated tokens combined).
    pub token: PhaseProfile,
    /// Tokens generated (`output_tokens × batch`).
    pub tokens_generated: u64,
}

impl RequestProfile {
    /// End-to-end latency in seconds at the maximum SM clock.
    pub fn total_time_s(&self) -> f64 {
        self.prompt.duration_s + self.token.duration_s
    }

    /// End-to-end latency at SM clock ratio `r`.
    pub fn total_time_at_clock(&self, dvfs: &DvfsModel, r: f64) -> f64 {
        self.prompt.duration_at_clock(dvfs, r) + self.token.duration_at_clock(dvfs, r)
    }

    /// Time-weighted mean workload intensity over the request (drives the
    /// *mean* power bars of Figure 8).
    pub fn mean_intensity(&self) -> f64 {
        let total = self.total_time_s();
        if total == 0.0 {
            return 0.0;
        }
        (self.prompt.intensity * self.prompt.duration_s
            + self.token.intensity * self.token.duration_s)
            / total
    }

    /// Peak workload intensity over the request (drives the *peak* power
    /// bars of Figure 8).
    pub fn peak_intensity(&self) -> f64 {
        self.prompt.intensity.max(self.token.intensity)
    }
}

/// Error: the model does not fit in the configured GPU group's memory.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelFitError {
    model: &'static str,
    needed_gib: f64,
    available_gib: f64,
}

impl fmt::Display for ModelFitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "model {} needs {:.0} GiB but the GPU group provides {:.0} GiB",
            self.model, self.needed_gib, self.available_gib
        )
    }
}

impl std::error::Error for ModelFitError {}

/// An LLM deployed for inference on a tensor-parallel GPU group.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceModel {
    model: ModelSpec,
    gpu: GpuSpec,
    dtype: DType,
    n_gpus: usize,
}

impl InferenceModel {
    /// Deploys `model` in FP16 on its Table 3 GPU allocation.
    ///
    /// # Errors
    ///
    /// Returns [`ModelFitError`] if the weights plus runtime reserve do
    /// not fit in the allocated GPUs' combined memory.
    pub fn new(model: ModelSpec, gpu: GpuSpec) -> Result<Self, ModelFitError> {
        let n_gpus = model.inference_gpus;
        Self::with_gpus(model, gpu, DType::Fp16, n_gpus)
    }

    /// Deploys `model` with an explicit datatype on the minimum GPU count
    /// that datatype needs (§4.2 quantization study).
    ///
    /// # Errors
    ///
    /// Returns [`ModelFitError`] if the model cannot fit (never happens
    /// for the zoo models since the count is computed from the footprint).
    pub fn with_dtype(model: ModelSpec, gpu: GpuSpec, dtype: DType) -> Result<Self, ModelFitError> {
        let n_gpus = dtype.gpus_required(&model, &gpu);
        Self::with_gpus(model, gpu, dtype, n_gpus)
    }

    /// Deploys `model` on an explicit GPU count.
    ///
    /// # Errors
    ///
    /// Returns [`ModelFitError`] if the weights plus runtime reserve do
    /// not fit in `n_gpus × gpu.memory_gib`.
    pub fn with_gpus(
        model: ModelSpec,
        gpu: GpuSpec,
        dtype: DType,
        n_gpus: usize,
    ) -> Result<Self, ModelFitError> {
        let needed = model.params_b * dtype.bytes_per_param() + RUNTIME_RESERVE_GIB;
        let available = n_gpus as f64 * gpu.memory_gib;
        if needed > available {
            return Err(ModelFitError {
                model: model.name,
                needed_gib: needed,
                available_gib: available,
            });
        }
        Ok(InferenceModel {
            model,
            gpu,
            dtype,
            n_gpus,
        })
    }

    /// The deployed model.
    pub fn model(&self) -> &ModelSpec {
        &self.model
    }

    /// The GPU type serving the model.
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// The weight datatype.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// GPUs in the tensor-parallel group.
    pub fn n_gpus(&self) -> usize {
        self.n_gpus
    }

    /// Aggregate tensor throughput of the group in FLOP/s.
    fn compute_flops(&self) -> f64 {
        self.n_gpus as f64
            * self.gpu.peak_fp16_tflops
            * 1e12
            * self.dtype.compute_efficiency()
            * PROMPT_MFU
    }

    /// Aggregate HBM bandwidth of the group in bytes/s, including the
    /// datatype's kernel efficiency (INT8 dequantization overhead).
    fn memory_bandwidth(&self) -> f64 {
        self.n_gpus as f64
            * self.gpu.mem_bandwidth_gbps
            * 1e9
            * TOKEN_BW_EFFICIENCY
            * self.dtype.kernel_bandwidth_efficiency()
    }

    /// Profiles one request at the maximum SM clock.
    pub fn profile(&self, cfg: &InferenceConfig) -> RequestProfile {
        let params = self.model.params();
        let weight_bytes = params * self.dtype.bytes_per_param();

        // Prompt: all input tokens in parallel. Compute dominates; the
        // weights are streamed once.
        let prompt_flops = 2.0 * params * cfg.input_tokens as f64 * cfg.batch as f64;
        let prompt_compute_s = prompt_flops / self.compute_flops();
        let prompt_mem_s = weight_bytes / self.memory_bandwidth();
        let prompt_s = prompt_compute_s + prompt_mem_s;

        // Token: sequential; every token re-streams the weights, compute
        // is negligible at small batch and grows with it.
        let token_compute_s = 2.0 * params * cfg.batch as f64 / self.compute_flops();
        let token_mem_s = weight_bytes / self.memory_bandwidth();
        let per_token_s = token_compute_s + token_mem_s;
        let token_s = per_token_s * cfg.output_tokens as f64;

        RequestProfile {
            prompt: PhaseProfile {
                duration_s: prompt_s,
                intensity: self.prompt_intensity(cfg),
                compute_fraction: prompt_compute_s / prompt_s,
            },
            token: PhaseProfile {
                duration_s: token_s,
                intensity: self.token_intensity(cfg),
                compute_fraction: token_compute_s / per_token_s,
            },
            tokens_generated: cfg.output_tokens as u64 * cfg.batch as u64,
        }
    }

    /// Prompt-phase workload intensity: grows with the effective parallel
    /// token count (`input × batch`, Figure 8a/8c) and with model scale,
    /// saturating at the transient peak.
    fn prompt_intensity(&self, cfg: &InferenceConfig) -> f64 {
        self.prompt_intensity_for_tokens(cfg.input_tokens as f64 * cfg.batch as f64)
    }

    /// Prompt intensity from a raw parallel-token count (shared by
    /// whole-request profiles and per-iteration batch compositions).
    fn prompt_intensity_for_tokens(&self, tokens: f64) -> f64 {
        let tokens = tokens.max(1.0);
        let saturation = ((tokens / 128.0).ln() / (16384.0f64 / 128.0).ln()).clamp(0.0, 1.0);
        let raw = (0.62 + 0.38 * saturation)
            * (0.55 + 0.45 * self.model.relative_scale())
            * self.dtype.peak_power_factor();
        raw.clamp(0.0, 1.0)
    }

    /// Serves `requests` back-to-back inferences of `cfg` on `gpu`,
    /// sampling per-GPU power every `dt` seconds — the measurement
    /// behind Figures 6 and 9. The GPU's live state applies: a reactive
    /// power cap lets prompt spikes escape before clamping, a frequency
    /// lock stretches the compute-bound phases.
    ///
    /// A short idle gap separates requests, reproducing the "three
    /// inferences of the same prompt" methodology of Figure 6.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn power_series(
        &self,
        cfg: &InferenceConfig,
        requests: usize,
        gpu: &mut Gpu,
        dt: f64,
    ) -> TimeSeries {
        assert!(dt > 0.0, "dt must be positive");
        let mut ts = TimeSeries::new();
        let mut t = 0.0;
        let profile = self.profile(cfg);
        let gap_steps = (0.5 / dt).ceil() as usize;
        for _ in 0..requests {
            for phase in [profile.prompt, profile.token] {
                let mut work = phase.duration_s;
                while work > 0.0 {
                    let slow = gpu
                        .dvfs()
                        .slowdown(gpu.clock_ratio().max(1e-3), phase.compute_fraction);
                    let power = gpu.advance(dt, phase.intensity);
                    ts.push(t, power);
                    t += dt;
                    work -= dt / slow;
                }
            }
            for _ in 0..gap_steps {
                let power = gpu.advance(dt, 0.0);
                ts.push(t, power);
                t += dt;
            }
        }
        ts
    }

    /// Token-phase workload intensity: stable and lower; nudged up by
    /// batch size (more tokens processed concurrently, Figure 8c) but
    /// insensitive to input/output sizes (Figure 8a/8e).
    fn token_intensity(&self, cfg: &InferenceConfig) -> f64 {
        self.token_intensity_for_batch(cfg.batch as f64)
    }

    /// Token intensity from a raw decode batch size (shared by
    /// whole-request profiles and per-iteration batch compositions).
    fn token_intensity_for_batch(&self, batch: f64) -> f64 {
        let batch_boost = 0.025 * batch.max(1.0).log2();
        let raw = (0.40 + 0.35 * self.model.relative_scale() + batch_boost)
            * self.dtype.peak_power_factor();
        raw.clamp(0.0, 1.0)
    }

    /// Profiles one continuous-batching *iteration* at the maximum SM
    /// clock (the polca-serve engine's unit of work).
    ///
    /// One iteration runs a chunk of prompt prefill (`prefill_tokens`
    /// processed in parallel) fused with one decode step for each of
    /// `decode_seqs` running sequences. The weights are streamed from
    /// HBM exactly once per iteration — the continuous-batching win —
    /// while compute scales with the total token count, so
    /// prefill-heavy iterations are compute-bound (near-TDP intensity,
    /// Figure 8a) and decode-only iterations are memory-bound (lower,
    /// batch-nudged intensity, Figure 8c).
    ///
    /// Intensity is the token-share-weighted blend of the prompt and
    /// token phase intensities for the same composition.
    ///
    /// # Panics
    ///
    /// Panics if the composition is empty (no tokens to process).
    pub fn iteration_profile(&self, comp: &BatchComposition) -> PhaseProfile {
        let total = comp.prefill_tokens as f64 + comp.decode_seqs as f64;
        assert!(total > 0.0, "iteration_profile: empty batch composition");
        let params = self.model.params();
        let weight_bytes = params * self.dtype.bytes_per_param();

        let compute_s = 2.0 * params * total / self.compute_flops();
        let mem_s = weight_bytes / self.memory_bandwidth();
        let duration_s = compute_s + mem_s;

        let prefill_share = comp.prefill_tokens as f64 / total;
        let intensity = prefill_share
            * self.prompt_intensity_for_tokens(comp.prefill_tokens as f64)
            + (1.0 - prefill_share) * self.token_intensity_for_batch(comp.decode_seqs as f64);

        PhaseProfile {
            duration_s,
            intensity,
            compute_fraction: compute_s / duration_s,
        }
    }

    /// HBM headroom left for KV-cache after weights and the runtime
    /// reserve, in GiB — what a paged-KV allocator may hand out.
    pub fn free_kv_gib(&self) -> f64 {
        let available = self.n_gpus as f64 * self.gpu.memory_gib;
        let weights = self.model.params_b * self.dtype.bytes_per_param();
        (available - weights - RUNTIME_RESERVE_GIB).max(0.0)
    }
}

/// Token composition of one continuous-batching iteration: how many
/// prompt tokens are prefilled this step and how many running
/// sequences take one decode step. Built by the polca-serve
/// `BatchScheduler`; consumed by
/// [`InferenceModel::iteration_profile`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatchComposition {
    /// Prompt tokens processed in parallel this iteration (the chunked
    /// prefill share).
    pub prefill_tokens: u32,
    /// Sequences in their decode phase, each generating one token.
    pub decode_seqs: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bloom() -> InferenceModel {
        InferenceModel::new(ModelSpec::bloom_176b(), GpuSpec::a100_80gb()).unwrap()
    }

    #[test]
    fn prompt_is_short_and_hot_token_is_long_and_cool() {
        let p = bloom().profile(&InferenceConfig::new(2048, 256, 1));
        assert!(p.prompt.duration_s < p.token.duration_s);
        assert!(p.prompt.intensity > p.token.intensity);
        assert!(p.prompt.compute_fraction > 0.8);
        assert!(p.token.compute_fraction < 0.1);
    }

    #[test]
    fn bloom_throughput_is_realistic() {
        // ~25-30 tokens/s for BLOOM-176B on 8×A100 matches public
        // DeepSpeed-Inference numbers.
        let p = bloom().profile(&InferenceConfig::new(512, 100, 1));
        let tok_per_s = 100.0 / p.token.duration_s;
        assert!((15.0..60.0).contains(&tok_per_s), "{tok_per_s} tok/s");
    }

    #[test]
    fn peak_power_grows_with_input_size() {
        let m = bloom();
        let peaks: Vec<f64> = [256u32, 512, 1024, 2048, 4096, 8192]
            .iter()
            .map(|&i| m.profile(&InferenceConfig::new(i, 128, 1)).peak_intensity())
            .collect();
        for w in peaks.windows(2) {
            assert!(w[1] >= w[0], "peak intensity should be non-decreasing");
        }
        assert!(peaks[5] > peaks[0] + 0.1);
    }

    #[test]
    fn mean_power_is_stable_across_input_sizes() {
        // Figure 8a: mean power dominated by token phase, barely moves.
        let m = bloom();
        let a = m
            .profile(&InferenceConfig::new(256, 512, 1))
            .mean_intensity();
        let b = m
            .profile(&InferenceConfig::new(4096, 512, 1))
            .mean_intensity();
        assert!((a - b).abs() < 0.12, "{a} vs {b}");
    }

    #[test]
    fn output_size_stretches_latency_linearly_without_power_change() {
        // Figure 8e/8f.
        let m = bloom();
        let short = m.profile(&InferenceConfig::new(1024, 128, 1));
        let long = m.profile(&InferenceConfig::new(1024, 512, 1));
        assert!((long.token.duration_s / short.token.duration_s - 4.0).abs() < 0.01);
        assert_eq!(short.peak_intensity(), long.peak_intensity());
        assert_eq!(short.token.intensity, long.token.intensity);
    }

    #[test]
    fn batch_size_raises_both_peak_and_mean() {
        // Figure 8c: batching raises peak sharply, mean gradually.
        let m = bloom();
        let b1 = m.profile(&InferenceConfig::new(512, 256, 1));
        let b16 = m.profile(&InferenceConfig::new(512, 256, 16));
        assert!(b16.peak_intensity() > b1.peak_intensity());
        assert!(b16.token.intensity > b1.token.intensity);
    }

    #[test]
    fn larger_models_draw_more_power() {
        // Figure 8: BLOOM-176B shows significantly larger peak and mean
        // than Flan-T5 under the same configuration.
        let cfg = InferenceConfig::new(2048, 256, 1);
        let big = bloom().profile(&cfg);
        let small = InferenceModel::new(ModelSpec::flan_t5_xxl(), GpuSpec::a100_80gb())
            .unwrap()
            .profile(&cfg);
        assert!(big.peak_intensity() > small.peak_intensity() + 0.2);
        assert!(big.mean_intensity() > small.mean_intensity());
    }

    #[test]
    fn fp16_beats_fp32_and_int8_on_latency() {
        // §4.2: FP16 is fastest thanks to optimized tensor-core kernels.
        let cfg = InferenceConfig::new(1024, 128, 1);
        let gpu = GpuSpec::a100_80gb();
        let m = ModelSpec::llama2_70b();
        let t = |dt: DType| {
            InferenceModel::with_dtype(m.clone(), gpu.clone(), dt)
                .unwrap()
                .profile(&cfg.with_dtype(dt))
                .total_time_s()
        };
        assert!(t(DType::Fp16) < t(DType::Fp32));
        assert!(t(DType::Fp16) < t(DType::Int8));
    }

    #[test]
    fn quantization_reduces_group_power_not_phase_structure() {
        // Insight 6: fewer GPUs ⇒ less total power, but prompt/token
        // asymmetry remains.
        let gpu = GpuSpec::a100_80gb();
        let m = ModelSpec::llama2_70b();
        let fp16 = InferenceModel::with_dtype(m.clone(), gpu.clone(), DType::Fp16).unwrap();
        let fp32 = InferenceModel::with_dtype(m, gpu, DType::Fp32).unwrap();
        assert!(fp16.n_gpus() < fp32.n_gpus());
        let cfg = InferenceConfig::new(2048, 128, 1);
        let p16 = fp16.profile(&cfg.with_dtype(DType::Fp16));
        assert!(p16.prompt.intensity > p16.token.intensity);
    }

    #[test]
    fn model_fit_error_on_too_few_gpus() {
        let err = InferenceModel::with_gpus(
            ModelSpec::bloom_176b(),
            GpuSpec::a100_80gb(),
            DType::Fp16,
            2,
        )
        .unwrap_err();
        assert!(err.to_string().contains("BLOOM"));
    }

    #[test]
    fn frequency_lock_hurts_prompt_more_than_token() {
        let m = bloom();
        let dvfs = DvfsModel::default();
        let p = m.profile(&InferenceConfig::new(4096, 256, 1));
        let r = 1110.0 / 1410.0;
        let prompt_slow = p.prompt.duration_at_clock(&dvfs, r) / p.prompt.duration_s;
        let token_slow = p.token.duration_at_clock(&dvfs, r) / p.token.duration_s;
        assert!(prompt_slow > 1.2);
        assert!(token_slow < 1.05);
    }

    #[test]
    fn end_to_end_slowdown_is_modest_at_freq_lock() {
        // Insight 7: minimal performance loss for substantial power
        // reduction on a typical chat request.
        let m = bloom();
        let dvfs = DvfsModel::default();
        let p = m.profile(&InferenceConfig::new(2048, 256, 1));
        let r = 1110.0 / 1410.0;
        let slow = p.total_time_at_clock(&dvfs, r) / p.total_time_s();
        assert!(slow < 1.10, "end-to-end slowdown {slow}");
    }

    #[test]
    #[should_panic(expected = "input_tokens")]
    fn zero_input_rejected() {
        let _ = InferenceConfig::new(0, 1, 1);
    }

    #[test]
    fn power_series_shows_spike_then_plateau() {
        // Figure 6: power spikes at the start of each request (prompt)
        // and settles into a stable lower plateau (token).
        let m = bloom();
        let mut gpu = Gpu::new(GpuSpec::a100_80gb());
        let cfg = InferenceConfig::new(4096, 64, 1);
        let ts = m.power_series(&cfg, 3, &mut gpu, 0.1);
        let peak = ts.peak().unwrap();
        assert!(peak >= 0.95 * gpu.spec().tdp_watts, "peak {peak}");
        // The plateau (median-ish) sits well below the spike.
        let mean = ts.mean().unwrap();
        assert!(mean < 0.85 * peak, "mean {mean} vs peak {peak}");
        // Idle gaps return to idle power.
        assert!(ts.trough().unwrap() <= gpu.spec().idle_watts + 1.0);
    }

    #[test]
    fn power_series_under_cap_clamps_plateau() {
        // Figure 9b: the reactive 325 W cap lets the prompt spike escape
        // but clamps sustained draw.
        let m = bloom();
        let cfg = InferenceConfig::new(8192, 128, 1);
        let mut free = Gpu::new(GpuSpec::a100_80gb());
        let base = m.power_series(&cfg, 1, &mut free, 0.05);
        let mut capped_gpu = Gpu::new(GpuSpec::a100_80gb());
        capped_gpu.set_power_cap(325.0).unwrap();
        let capped = m.power_series(&cfg, 1, &mut capped_gpu, 0.05);
        assert!(capped.peak().unwrap() > 325.0, "spike escapes the cap");
        assert!(capped.mean().unwrap() < base.mean().unwrap());
        // Frequency lock stretches the run (Figure 9c).
        let mut locked_gpu = Gpu::new(GpuSpec::a100_80gb());
        locked_gpu.lock_clock(1110.0).unwrap();
        let locked = m.power_series(&cfg, 1, &mut locked_gpu, 0.05);
        assert!(locked.peak().unwrap() < base.peak().unwrap());
        assert!(
            locked.times().last().unwrap() > base.times().last().unwrap(),
            "locked run should take longer"
        );
    }

    #[test]
    fn table3_models_all_fit_their_allocations() {
        let gpu = GpuSpec::a100_80gb();
        for m in ModelSpec::all() {
            assert!(
                InferenceModel::new(m.clone(), gpu.clone()).is_ok(),
                "{} does not fit its Table 3 allocation",
                m.name
            );
        }
    }
}
