//! The training iteration model (§4.1).
//!
//! Each training iteration alternates computation-intensive phases
//! (forward, backward) with communication-intensive ones (the small dip
//! between forward and backward, and the large all-GPU synchronization at
//! the iteration boundary). The alternation produces the power swings of
//! Figure 4 — Insight 2 — with model-specific trough depths: RoBERTa
//! stays at 75 % of TDP at the iteration boundary, GPT-NeoX drops to
//! 50 %, and Flan-T5 falls all the way to idle (20 %).

use polca_gpu::{DvfsModel, Gpu};
use polca_stats::TimeSeries;

use crate::zoo::ModelSpec;

/// One phase within a training iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingPhase {
    /// Phase name for trace annotation.
    pub name: &'static str,
    /// Fraction of the iteration this phase occupies at full clock.
    pub duration_frac: f64,
    /// Workload intensity in `[0, 1]` (input to `Gpu::power_at`).
    pub intensity: f64,
    /// Compute-bound fraction (input to `DvfsModel::slowdown`);
    /// communication phases are insensitive to the SM clock.
    pub compute_fraction: f64,
}

/// A fine-tuning job on one 8-GPU server (§3.4: "we profile LLM
/// fine-tuning at the server level instead of full-scale LLM training").
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingJob {
    model: ModelSpec,
    iteration_s: f64,
    phases: Vec<TrainingPhase>,
}

impl TrainingJob {
    /// Builds the calibrated fine-tuning job for `model`.
    ///
    /// The three training-lineup models (Figure 4) use measured
    /// calibrations; other models fall back to the nearest size class.
    pub fn fine_tuning(model: &ModelSpec) -> Self {
        // (iteration seconds, fwd, mid-dip, bwd, sync intensities)
        let (iteration_s, i_fwd, i_dip, i_bwd, i_sync) = match model.name {
            // Peak just below TDP; boundary trough at 75 % of TDP.
            "RoBERTa" => (1.0, 0.80, 0.64, 0.86, 0.64),
            // Peak at/above TDP; boundary trough at 50 % of TDP.
            "GPT-NeoX" => (2.0, 0.92, 0.60, 1.00, 0.35),
            // Peak at/above TDP; boundary trough at idle (20 % of TDP).
            "Flan-T5" => (4.0, 0.92, 0.50, 1.00, 0.0),
            _ if model.params_b < 1.0 => (1.0, 0.80, 0.64, 0.86, 0.64),
            _ if model.params_b < 30.0 => (2.0, 0.92, 0.60, 1.00, 0.35),
            _ => (4.0, 0.92, 0.50, 1.00, 0.0),
        };
        TrainingJob {
            model: model.clone(),
            iteration_s,
            phases: vec![
                TrainingPhase {
                    name: "forward",
                    duration_frac: 0.40,
                    intensity: i_fwd,
                    compute_fraction: 0.85,
                },
                TrainingPhase {
                    name: "fwd-bwd-dip",
                    duration_frac: 0.05,
                    intensity: i_dip,
                    compute_fraction: 0.3,
                },
                TrainingPhase {
                    name: "backward",
                    duration_frac: 0.45,
                    intensity: i_bwd,
                    compute_fraction: 0.85,
                },
                TrainingPhase {
                    name: "sync",
                    duration_frac: 0.10,
                    intensity: i_sync,
                    compute_fraction: 0.1,
                },
            ],
        }
    }

    /// The model being fine-tuned.
    pub fn model(&self) -> &ModelSpec {
        &self.model
    }

    /// Iteration duration in seconds at the maximum SM clock.
    pub fn iteration_time_s(&self) -> f64 {
        self.iteration_s
    }

    /// The iteration's phases, in execution order.
    pub fn phases(&self) -> &[TrainingPhase] {
        &self.phases
    }

    /// The iteration-time multiplier (≥ 1) at SM clock ratio `r`.
    pub fn iteration_slowdown(&self, dvfs: &DvfsModel, r: f64) -> f64 {
        self.phases
            .iter()
            .map(|p| p.duration_frac * dvfs.slowdown(r, p.compute_fraction))
            .sum()
    }

    /// Training throughput multiplier (≤ 1) at SM clock ratio `r`.
    pub fn throughput_scale(&self, dvfs: &DvfsModel, r: f64) -> f64 {
        1.0 / self.iteration_slowdown(dvfs, r)
    }

    /// Runs `iterations` iterations on `gpu`, sampling power every `dt`
    /// seconds, and returns the per-GPU power timeseries.
    ///
    /// The GPU's live state applies: a frequency lock stretches the
    /// compute phases (but not the communication dips), and a reactive
    /// power cap clips the peaks while the troughs pass beneath it
    /// untouched (Insight 3).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn power_series(&self, gpu: &mut Gpu, iterations: usize, dt: f64) -> TimeSeries {
        assert!(dt > 0.0, "dt must be positive");
        let mut ts = TimeSeries::new();
        let mut t = 0.0;
        for _ in 0..iterations {
            for phase in &self.phases {
                // Work is measured in seconds-at-full-clock; the live
                // clock ratio (lock and/or cap controller) stretches it.
                let mut work = phase.duration_frac * self.iteration_s;
                while work > 0.0 {
                    let slow = gpu
                        .dvfs()
                        .slowdown(gpu.clock_ratio().max(1e-3), phase.compute_fraction);
                    let power = gpu.advance(dt, phase.intensity);
                    ts.push(t, power);
                    t += dt;
                    work -= dt / slow;
                }
            }
        }
        ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polca_gpu::GpuSpec;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::a100_80gb())
    }

    fn job(name: &str) -> TrainingJob {
        let model = ModelSpec::all()
            .into_iter()
            .find(|m| m.name == name)
            .unwrap();
        TrainingJob::fine_tuning(&model)
    }

    #[test]
    fn phase_fractions_sum_to_one() {
        for m in ModelSpec::all() {
            let j = TrainingJob::fine_tuning(&m);
            let total: f64 = j.phases().iter().map(|p| p.duration_frac).sum();
            assert!((total - 1.0).abs() < 1e-9, "{}", m.name);
        }
    }

    #[test]
    fn peak_power_reaches_or_exceeds_tdp_for_large_models() {
        // Insight 1.
        for name in ["GPT-NeoX", "Flan-T5"] {
            let mut g = gpu();
            let ts = job(name).power_series(&mut g, 2, 0.01);
            assert!(
                ts.peak().unwrap() >= g.spec().tdp_watts,
                "{name} peak {:?}",
                ts.peak()
            );
        }
    }

    #[test]
    fn roberta_stays_below_tdp() {
        // Figure 4: the small encoder model does not reach TDP.
        let mut g = gpu();
        let ts = job("RoBERTa").power_series(&mut g, 3, 0.01);
        assert!(ts.peak().unwrap() < g.spec().tdp_watts);
    }

    #[test]
    fn trough_depths_match_figure4() {
        let tdp = 400.0;
        let cases = [("RoBERTa", 0.75), ("GPT-NeoX", 0.50), ("Flan-T5", 0.20)];
        for (name, frac) in cases {
            let mut g = gpu();
            let ts = job(name).power_series(&mut g, 3, 0.01);
            let trough = ts.trough().unwrap() / tdp;
            assert!(
                (trough - frac).abs() < 0.05,
                "{name}: trough {trough:.2} expected {frac}"
            );
        }
    }

    #[test]
    fn power_swings_grow_with_model_scale() {
        // Insight 2: swing magnitude = peak - trough.
        let swing = |name: &str| {
            let mut g = gpu();
            let ts = job(name).power_series(&mut g, 3, 0.01);
            ts.peak().unwrap() - ts.trough().unwrap()
        };
        assert!(swing("Flan-T5") > swing("GPT-NeoX"));
        assert!(swing("GPT-NeoX") > swing("RoBERTa"));
    }

    #[test]
    fn power_cap_clips_peaks_not_troughs() {
        // Insight 3 on GPT-NeoX: cap at 325 W, evaluated at the 100 ms
        // DCGM resolution the paper measures at (sub-sample transients of
        // the reactive controller are invisible to its telemetry).
        let j = job("GPT-NeoX");
        let mut free = gpu();
        let uncapped = j.power_series(&mut free, 4, 0.01).resample_mean(0.1);
        let mut capped_gpu = gpu();
        capped_gpu.set_power_cap(325.0).unwrap();
        let capped = j.power_series(&mut capped_gpu, 4, 0.01).resample_mean(0.1);
        // Skip the first iteration: the controller needs one peak to arm.
        let uncapped = uncapped.slice_time(2.0, 8.0);
        let capped = capped.slice_time(2.0, 8.0);
        // Peak comes down substantially…
        assert!(
            capped.peak().unwrap() < uncapped.peak().unwrap() - 30.0,
            "capped {:?} vs uncapped {:?}",
            capped.peak(),
            uncapped.peak()
        );
        // …while the sync trough is barely affected.
        assert!(
            (capped.trough().unwrap() - uncapped.trough().unwrap()).abs() < 15.0,
            "capped {:?} vs uncapped {:?}",
            capped.trough(),
            uncapped.trough()
        );
    }

    #[test]
    fn frequency_lock_reduces_overall_power_and_slows_iterations() {
        let j = job("Flan-T5");
        let mut free = gpu();
        let base = j.power_series(&mut free, 2, 0.01);
        let mut locked = gpu();
        locked.lock_clock(1110.0).unwrap();
        let capped = j.power_series(&mut locked, 2, 0.01);
        assert!(capped.peak().unwrap() < base.peak().unwrap());
        assert!(capped.mean().unwrap() < base.mean().unwrap());
        // Iterations stretch: the locked series takes longer in sim time.
        let base_end = *base.times().last().unwrap();
        let locked_end = *capped.times().last().unwrap();
        assert!(locked_end > base_end * 1.05);
    }

    #[test]
    fn training_capping_tradeoff_matches_figure5() {
        // Flan-T5/GPT-NeoX: ~20 % peak power reduction for ≤10 % perf loss.
        let j = job("Flan-T5");
        let dvfs = DvfsModel::default();
        let r = 1110.0 / 1410.0;
        let mut free = gpu();
        let base_peak = j.power_series(&mut free, 2, 0.01).peak().unwrap();
        let mut locked = gpu();
        locked.lock_clock(1110.0).unwrap();
        let locked_peak = j.power_series(&mut locked, 2, 0.01).peak().unwrap();
        let power_reduction = 1.0 - locked_peak / base_peak;
        let perf_loss = 1.0 - j.throughput_scale(&dvfs, r);
        assert!(power_reduction > 0.15, "power reduction {power_reduction}");
        assert!(perf_loss < 0.20, "perf loss {perf_loss}");
        assert!(power_reduction > perf_loss);
    }

    #[test]
    fn iteration_slowdown_is_one_at_full_clock() {
        let j = job("GPT-NeoX");
        let dvfs = DvfsModel::default();
        assert!((j.iteration_slowdown(&dvfs, 1.0) - 1.0).abs() < 1e-12);
        assert!(j.iteration_slowdown(&dvfs, 0.8) > 1.0);
    }

    #[test]
    fn unknown_models_fall_back_by_size_class() {
        let tiny = TrainingJob::fine_tuning(&ModelSpec::roberta());
        let big = TrainingJob::fine_tuning(&ModelSpec::bloom_176b());
        assert!(big.iteration_time_s() > tiny.iteration_time_s());
        // Largest class syncs all the way down to idle.
        assert_eq!(big.phases().last().unwrap().intensity, 0.0);
    }
}
