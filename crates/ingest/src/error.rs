//! Typed ingestion errors with line-level diagnostics.

use std::fmt;
use std::io;

use polca_trace::ReplicationError;

/// Why a trace could not be ingested, calibrated, or replayed.
#[derive(Debug)]
pub enum IngestError {
    /// Reading the underlying file or stream failed.
    Io(io::Error),
    /// The input has no header line at all.
    EmptyInput,
    /// The header is present but a required column is missing.
    MissingColumn {
        /// The canonical name of the missing column.
        column: &'static str,
    },
    /// A data row failed to parse. `line` is 1-based and counts the
    /// header, so it matches what an editor shows for the file.
    Row {
        /// 1-based line number in the input.
        line: usize,
        /// What went wrong on that line.
        message: String,
    },
    /// The header parsed but not a single data row survived.
    NoRecords,
    /// The trace parsed but is too short, flat, or sparse to calibrate.
    Calibration(String),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "cannot read trace: {e}"),
            IngestError::EmptyInput => write!(f, "trace is empty (no header line)"),
            IngestError::MissingColumn { column } => {
                write!(f, "header has no `{column}` column")
            }
            IngestError::Row { line, message } => write!(f, "line {line}: {message}"),
            IngestError::NoRecords => write!(f, "trace has a header but no valid data rows"),
            IngestError::Calibration(msg) => write!(f, "cannot calibrate trace: {msg}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for IngestError {
    fn from(e: io::Error) -> Self {
        IngestError::Io(e)
    }
}

impl From<ReplicationError> for IngestError {
    fn from(e: ReplicationError) -> Self {
        IngestError::Calibration(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_errors_carry_line_numbers() {
        let e = IngestError::Row {
            line: 17,
            message: "bad token count".into(),
        };
        assert_eq!(e.to_string(), "line 17: bad token count");
    }

    #[test]
    fn replication_errors_convert_to_calibration_diagnostics() {
        let e: IngestError = ReplicationError::EmptyOverlap.into();
        assert!(e.to_string().contains("cannot calibrate"));
        assert!(e.to_string().contains("do not overlap"));
    }
}
