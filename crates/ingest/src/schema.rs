//! The typed schema of Azure-2024-style request logs.
//!
//! The public Azure LLM inference trace ships as
//! `TIMESTAMP,ContextTokens,GeneratedTokens`; other exports of the same
//! data use snake_case or `input`/`output` vocabulary, and some carry a
//! priority/class column. [`TraceSchema`] maps any of those header
//! variants onto column indices, and [`parse_timestamp`] accepts both
//! numeric seconds and `YYYY-MM-DD HH:MM:SS[.ffffff]` datetimes without
//! any date-time dependency.

use polca_cluster::Priority;

use crate::error::IngestError;

/// One parsed request-log row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Arrival time in seconds. Numeric timestamps are kept verbatim;
    /// datetime timestamps are seconds since the Unix epoch until
    /// [`IngestedTrace`](crate::reader::IngestedTrace) rebases them.
    pub arrival_s: f64,
    /// Prompt length in tokens (≥ 1).
    pub context_tokens: u32,
    /// Tokens generated (≥ 1).
    pub generated_tokens: u32,
    /// Priority class, if the log carries one.
    pub priority: Option<Priority>,
}

/// How a trace encodes its timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimestampKind {
    /// Plain seconds (what [`requests_to_csv`](crate::export::requests_to_csv)
    /// writes); `t = 0` is midnight on a Monday, matching
    /// `DiurnalPattern`'s convention.
    Seconds,
    /// A `YYYY-MM-DD HH:MM:SS[.ffffff]` civil datetime (the Azure trace
    /// format), converted to seconds since the Unix epoch.
    DateTime,
}

/// Column indices for the recognized fields of a request log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSchema {
    /// Index of the timestamp column.
    pub timestamp: usize,
    /// Index of the context/prompt-tokens column.
    pub context: usize,
    /// Index of the generated/output-tokens column.
    pub generated: usize,
    /// Index of the optional priority/class column.
    pub priority: Option<usize>,
    /// Total number of header columns (rows must not have fewer).
    pub width: usize,
}

/// Lower-cases and strips `_`, `-`, and spaces so that `ContextTokens`,
/// `context_tokens`, and `Context Tokens` all normalize identically.
fn normalize(header: &str) -> String {
    header
        .trim()
        .trim_start_matches('\u{feff}')
        .chars()
        .filter(|c| !matches!(c, '_' | '-' | ' '))
        .flat_map(|c| c.to_lowercase())
        .collect()
}

impl TraceSchema {
    /// Maps a header row onto the schema, tolerating the known naming
    /// variants in any column order.
    ///
    /// # Errors
    ///
    /// Returns [`IngestError::MissingColumn`] naming the first required
    /// column that could not be found.
    pub fn from_header(fields: &[String]) -> Result<Self, IngestError> {
        let normalized: Vec<String> = fields.iter().map(|f| normalize(f)).collect();
        let find = |names: &[&str]| normalized.iter().position(|h| names.iter().any(|n| h == n));
        let timestamp = find(&["timestamp", "timestamps", "time", "arrival", "arrivals"]).ok_or(
            IngestError::MissingColumn {
                column: "TIMESTAMP",
            },
        )?;
        let context = find(&[
            "contexttokens",
            "context",
            "inputtokens",
            "input",
            "prompttokens",
            "prompt",
        ])
        .ok_or(IngestError::MissingColumn {
            column: "ContextTokens",
        })?;
        let generated = find(&[
            "generatedtokens",
            "generated",
            "outputtokens",
            "output",
            "completiontokens",
        ])
        .ok_or(IngestError::MissingColumn {
            column: "GeneratedTokens",
        })?;
        let priority = find(&["priority", "class", "tier"]);
        Ok(TraceSchema {
            timestamp,
            context,
            generated,
            priority,
            width: fields.len(),
        })
    }
}

/// Days from 1970-01-01 to the given civil date (proleptic Gregorian);
/// the standard era-based formulation, exact over the whole range.
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = if m > 2 { m - 3 } else { m + 9 } as i64;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// The weekday of an epoch-day count, 0 = Monday … 6 = Sunday.
pub(crate) fn weekday_mon0(epoch_days: i64) -> i64 {
    // 1970-01-01 was a Thursday (= 3 with Monday as 0).
    (epoch_days + 3).rem_euclid(7)
}

fn civil_days_in_month(y: i64, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (y % 4 == 0 && y % 100 != 0) || y % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Parses a timestamp field: numeric seconds first, then an Azure-style
/// `YYYY-MM-DD HH:MM:SS[.ffffff]` datetime (space or `T` separator).
///
/// # Errors
///
/// Returns a human-readable message describing which format check
/// failed.
pub fn parse_timestamp(field: &str) -> Result<(f64, TimestampKind), String> {
    let field = field.trim();
    if let Ok(secs) = field.parse::<f64>() {
        if !secs.is_finite() {
            return Err(format!("timestamp `{field}` is not finite"));
        }
        if secs < 0.0 {
            return Err(format!("timestamp `{field}` is negative"));
        }
        return Ok((secs, TimestampKind::Seconds));
    }
    parse_datetime(field)
        .map(|s| (s, TimestampKind::DateTime))
        .ok_or_else(|| {
            format!("cannot parse timestamp `{field}` (expected seconds or YYYY-MM-DD HH:MM:SS)")
        })
}

fn parse_datetime(s: &str) -> Option<f64> {
    // "2024-05-10 00:00:38.719382" — date and time split by ' ' or 'T'.
    let (date, time) = s.split_once([' ', 'T'])?;
    let mut dp = date.split('-');
    let y: i64 = dp.next()?.parse().ok()?;
    let m: u32 = dp.next()?.parse().ok()?;
    let d: u32 = dp.next()?.parse().ok()?;
    if dp.next().is_some() || !(1..=12).contains(&m) {
        return None;
    }
    if d < 1 || d > civil_days_in_month(y, m) {
        return None;
    }
    let mut tp = time.split(':');
    let hh: u32 = tp.next()?.parse().ok()?;
    let mm: u32 = tp.next()?.parse().ok()?;
    let ss: f64 = tp.next()?.parse().ok()?;
    if tp.next().is_some() || hh > 23 || mm > 59 || !(0.0..60.0).contains(&ss) {
        return None;
    }
    let days = days_from_civil(y, m, d);
    Some(days as f64 * 86_400.0 + hh as f64 * 3600.0 + mm as f64 * 60.0 + ss)
}

/// Seconds into the (Monday-started) week at the given epoch-seconds
/// instant — the phase a datetime trace carries for diurnal alignment.
pub(crate) fn week_phase_s(epoch_s: f64) -> f64 {
    let days = (epoch_s / 86_400.0).floor() as i64;
    let weekday = weekday_mon0(days);
    weekday as f64 * 86_400.0 + epoch_s.rem_euclid(86_400.0)
}

/// Parses a priority field: `high`/`hi`/`1` or `low`/`lo`/`0`,
/// case-insensitively.
pub(crate) fn parse_priority(field: &str) -> Result<Priority, String> {
    match field.trim().to_ascii_lowercase().as_str() {
        "high" | "hi" | "1" => Ok(Priority::High),
        "low" | "lo" | "0" => Ok(Priority::Low),
        other => Err(format!("unknown priority `{other}` (expected high|low)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn azure_header_maps_exactly() {
        let s =
            TraceSchema::from_header(&fields(&["TIMESTAMP", "ContextTokens", "GeneratedTokens"]))
                .unwrap();
        assert_eq!((s.timestamp, s.context, s.generated), (0, 1, 2));
        assert_eq!(s.priority, None);
        assert_eq!(s.width, 3);
    }

    #[test]
    fn snake_case_and_permuted_headers_map() {
        let s = TraceSchema::from_header(&fields(&[
            "output_tokens",
            "priority",
            "timestamp_s",
            "input_tokens",
        ]))
        .unwrap();
        assert_eq!(s.timestamp, 2);
        assert_eq!(s.context, 3);
        assert_eq!(s.generated, 0);
        assert_eq!(s.priority, Some(1));
    }

    #[test]
    fn missing_column_is_named() {
        let err = TraceSchema::from_header(&fields(&["TIMESTAMP", "GeneratedTokens"])).unwrap_err();
        assert!(matches!(
            err,
            IngestError::MissingColumn {
                column: "ContextTokens"
            }
        ));
    }

    #[test]
    fn numeric_timestamps_parse_verbatim() {
        let (t, kind) = parse_timestamp("1234.5678901234").unwrap();
        assert_eq!(t, 1234.5678901234);
        assert_eq!(kind, TimestampKind::Seconds);
        assert!(parse_timestamp("-1.0").is_err());
        assert!(parse_timestamp("inf").is_err());
    }

    #[test]
    fn azure_datetimes_parse_to_epoch_seconds() {
        // 2024-05-10 is 19853 days after the epoch.
        let (t, kind) = parse_timestamp("2024-05-10 00:00:38.719382").unwrap();
        assert_eq!(kind, TimestampKind::DateTime);
        assert!((t - (19_853.0 * 86_400.0 + 38.719382)).abs() < 1e-6, "{t}");
        // 'T' separator and no fraction also work.
        let (t2, _) = parse_timestamp("2024-05-10T01:02:03").unwrap();
        assert!((t2 - (19_853.0 * 86_400.0 + 3723.0)).abs() < 1e-9);
    }

    #[test]
    fn bad_datetimes_are_rejected() {
        for bad in [
            "2024-13-01 00:00:00",
            "2024-02-30 00:00:00",
            "2024-05-10 24:00:00",
            "2024-05-10 00:61:00",
            "yesterday",
        ] {
            assert!(parse_timestamp(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn weekday_and_week_phase_line_up() {
        // 1970-01-01 was a Thursday; 2024-05-10 was a Friday.
        assert_eq!(weekday_mon0(0), 3);
        assert_eq!(weekday_mon0(days_from_civil(2024, 5, 10)), 4);
        let (t, _) = parse_timestamp("2024-05-10 06:00:00").unwrap();
        assert!((week_phase_s(t) - (4.0 * 86_400.0 + 6.0 * 3600.0)).abs() < 1e-6);
    }

    #[test]
    fn priority_variants_parse() {
        assert_eq!(parse_priority("High").unwrap(), Priority::High);
        assert_eq!(parse_priority(" low ").unwrap(), Priority::Low);
        assert_eq!(parse_priority("1").unwrap(), Priority::High);
        assert!(parse_priority("urgent").is_err());
    }
}
