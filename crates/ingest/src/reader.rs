//! Streaming CSV ingestion.
//!
//! [`TraceReader`] wraps any `BufRead` and yields one
//! `Result<TraceRecord, IngestError>` per data row, so malformed rows
//! surface with their line number while well-formed rows keep flowing.
//! [`IngestedTrace`] is the collected form the rest of the subsystem
//! works with: rows sorted by arrival, datetime timestamps rebased to
//! the trace start (keeping the week phase for diurnal alignment), and
//! skipped-row diagnostics retained.

use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

use polca_obs::{Label, Recorder};

use crate::error::IngestError;
use crate::schema::{
    parse_priority, parse_timestamp, week_phase_s, TimestampKind, TraceRecord, TraceSchema,
};

/// Splits one CSV line, honoring RFC-4180 double-quote escaping (the
/// polca-obs CSV writer quotes cells containing commas or quotes).
fn split_csv_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => fields.push(std::mem::take(&mut field)),
            _ => field.push(c),
        }
    }
    fields.push(field);
    fields
}

/// A streaming reader over an Azure-2024-style request log.
///
/// Construction parses the header; iteration yields rows one at a time
/// without buffering the file, which is what lets multi-week traces
/// ingest in constant memory.
#[derive(Debug)]
pub struct TraceReader<R: BufRead> {
    lines: std::io::Lines<R>,
    schema: TraceSchema,
    /// 1-based line number of the most recently read line.
    line: usize,
    kind: Option<TimestampKind>,
}

impl TraceReader<BufReader<File>> {
    /// Opens a CSV file for streaming ingestion.
    ///
    /// # Errors
    ///
    /// Returns [`IngestError::Io`] if the file cannot be opened and any
    /// header error [`TraceReader::new`] reports.
    pub fn open(path: &Path) -> Result<Self, IngestError> {
        TraceReader::new(BufReader::new(File::open(path)?))
    }
}

impl<R: BufRead> TraceReader<R> {
    /// Wraps a reader and parses the header line.
    ///
    /// # Errors
    ///
    /// Returns [`IngestError::EmptyInput`] on an empty stream and
    /// [`IngestError::MissingColumn`] when a required column is absent.
    pub fn new(reader: R) -> Result<Self, IngestError> {
        let mut lines = reader.lines();
        let header = match lines.next() {
            None => return Err(IngestError::EmptyInput),
            Some(h) => h?,
        };
        let schema = TraceSchema::from_header(&split_csv_line(&header))?;
        Ok(TraceReader {
            lines,
            schema,
            line: 1,
            kind: None,
        })
    }

    /// The column mapping derived from the header.
    pub fn schema(&self) -> &TraceSchema {
        &self.schema
    }

    fn row_err(&self, message: String) -> IngestError {
        IngestError::Row {
            line: self.line,
            message,
        }
    }

    fn parse_row(&mut self, line: &str) -> Result<TraceRecord, IngestError> {
        let fields = split_csv_line(line);
        if fields.len() < self.schema.width {
            return Err(self.row_err(format!(
                "expected {} column(s), found {}",
                self.schema.width,
                fields.len()
            )));
        }
        let (arrival_s, kind) =
            parse_timestamp(&fields[self.schema.timestamp]).map_err(|m| self.row_err(m))?;
        match self.kind {
            None => self.kind = Some(kind),
            Some(first) if first != kind => {
                return Err(self.row_err(
                    "timestamp format differs from earlier rows (mixed seconds and datetimes)"
                        .into(),
                ));
            }
            Some(_) => {}
        }
        let tokens = |idx: usize, what: &str| -> Result<u32, IngestError> {
            let raw = fields[idx].trim();
            let n: u64 = raw.parse().map_err(|_| IngestError::Row {
                line: self.line,
                message: format!("cannot parse {what} `{raw}` as a token count"),
            })?;
            if n == 0 || n > u32::MAX as u64 {
                return Err(IngestError::Row {
                    line: self.line,
                    message: format!("{what} {n} out of range (must be 1..=4294967295)"),
                });
            }
            Ok(n as u32)
        };
        let context_tokens = tokens(self.schema.context, "context tokens")?;
        let generated_tokens = tokens(self.schema.generated, "generated tokens")?;
        let priority = match self.schema.priority {
            Some(idx) if !fields[idx].trim().is_empty() => {
                Some(parse_priority(&fields[idx]).map_err(|m| self.row_err(m))?)
            }
            _ => None,
        };
        Ok(TraceRecord {
            arrival_s,
            context_tokens,
            generated_tokens,
            priority,
        })
    }
}

impl<R: BufRead> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, IngestError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let line = match self.lines.next()? {
                Ok(l) => l,
                Err(e) => return Some(Err(e.into())),
            };
            self.line += 1;
            if line.trim().is_empty() {
                continue;
            }
            return Some(self.parse_row(&line));
        }
    }
}

/// How many malformed-row diagnostics an [`IngestedTrace`] retains.
const MAX_RETAINED_ERRORS: usize = 8;

/// A fully ingested trace: time-sorted records plus diagnostics.
#[derive(Debug, Clone)]
pub struct IngestedTrace {
    records: Vec<TraceRecord>,
    /// Seconds into a Monday-started week at which the trace begins.
    week_phase_s: f64,
    /// Whether timestamps were rebased (datetime traces).
    rebased: bool,
    skipped: usize,
    row_errors: Vec<String>,
}

impl IngestedTrace {
    /// Ingests a CSV file, skipping malformed rows.
    ///
    /// # Errors
    ///
    /// Returns [`IngestError`] on I/O or header problems, or
    /// [`IngestError::NoRecords`] when no row survives.
    pub fn from_csv_path(path: &Path) -> Result<Self, IngestError> {
        Self::collect_reader(TraceReader::open(path)?, &Recorder::disabled())
    }

    /// Like [`IngestedTrace::from_csv_path`], but counts accepted and
    /// skipped rows and the trace span into `recorder`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`IngestedTrace::from_csv_path`].
    pub fn from_csv_path_observed(path: &Path, recorder: &Recorder) -> Result<Self, IngestError> {
        Self::collect_reader(TraceReader::open(path)?, recorder)
    }

    /// Ingests from any buffered reader (e.g. `&[u8]` for in-memory
    /// CSV), skipping malformed rows.
    ///
    /// # Errors
    ///
    /// Same conditions as [`IngestedTrace::from_csv_path`].
    pub fn from_reader<R: BufRead>(reader: R) -> Result<Self, IngestError> {
        Self::collect_reader(TraceReader::new(reader)?, &Recorder::disabled())
    }

    /// Like [`IngestedTrace::from_reader`], but counts accepted and
    /// skipped rows (`ingest.rows_ok` / `ingest.rows_skipped`) and the
    /// trace span (`ingest.duration_s`) into `recorder`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`IngestedTrace::from_csv_path`].
    pub fn from_reader_observed<R: BufRead>(
        reader: R,
        recorder: &Recorder,
    ) -> Result<Self, IngestError> {
        Self::collect_reader(TraceReader::new(reader)?, recorder)
    }

    fn collect_reader<R: BufRead>(
        reader: TraceReader<R>,
        recorder: &Recorder,
    ) -> Result<Self, IngestError> {
        let _span = recorder.time("ingest.read");
        let mut records = Vec::new();
        let mut skipped = 0usize;
        let mut row_errors = Vec::new();
        let mut kind = TimestampKind::Seconds;
        let mut reader = reader;
        for row in &mut reader {
            match row {
                Ok(r) => records.push(r),
                Err(e @ IngestError::Row { .. }) => {
                    skipped += 1;
                    if row_errors.len() < MAX_RETAINED_ERRORS {
                        row_errors.push(e.to_string());
                    }
                }
                Err(e) => return Err(e),
            }
        }
        if let Some(k) = reader.kind {
            kind = k;
        }
        if records.is_empty() {
            return Err(IngestError::NoRecords);
        }
        // Arrival order is a simulator invariant the log may not honor.
        records.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
        // Numeric traces keep their own clock (t = 0 is Monday
        // midnight, the generator convention) so a synthetic round trip
        // is exact; datetime traces rebase to their first record and
        // carry the week phase separately.
        let (week_phase_s, rebased) = match kind {
            TimestampKind::Seconds => (0.0, false),
            TimestampKind::DateTime => {
                let t0 = records[0].arrival_s;
                for r in &mut records {
                    r.arrival_s -= t0;
                }
                (week_phase_s(t0), true)
            }
        };
        recorder.add("ingest.rows_ok", Label::Global, records.len() as u64);
        recorder.add("ingest.rows_skipped", Label::Global, skipped as u64);
        let trace = IngestedTrace {
            records,
            week_phase_s,
            rebased,
            skipped,
            row_errors,
        };
        recorder.gauge("ingest.duration_s", Label::Global, trace.duration_s());
        Ok(trace)
    }

    /// The time-sorted records.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of ingested requests.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace holds no records (never true for a successfully
    /// constructed trace).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Span from the first to the last arrival, in seconds.
    pub fn duration_s(&self) -> f64 {
        match (self.records.first(), self.records.last()) {
            (Some(a), Some(b)) => b.arrival_s - a.arrival_s,
            _ => 0.0,
        }
    }

    /// Arrival time of the first record, in trace seconds.
    pub fn start_s(&self) -> f64 {
        self.records.first().map_or(0.0, |r| r.arrival_s)
    }

    /// Seconds into a Monday-started week at which the trace begins —
    /// `week_phase_s + (t - start_s)` aligns trace time `t` with
    /// `DiurnalPattern`'s clock.
    pub fn week_phase_s(&self) -> f64 {
        if self.rebased {
            self.week_phase_s
        } else {
            // Numeric traces carry the phase in the timestamps themselves.
            self.start_s()
        }
    }

    /// Whether timestamps were rebased to the trace start (datetime
    /// traces only).
    pub fn rebased(&self) -> bool {
        self.rebased
    }

    /// Share of records carrying an explicit priority.
    pub fn priority_coverage(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.priority.is_some()).count() as f64
            / self.records.len() as f64
    }

    /// Number of malformed rows skipped during ingestion.
    pub fn skipped_rows(&self) -> usize {
        self.skipped
    }

    /// Line-numbered diagnostics for the first few skipped rows.
    pub fn row_errors(&self) -> &[String] {
        &self.row_errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polca_cluster::Priority;

    const GOOD: &str = "\
TIMESTAMP,ContextTokens,GeneratedTokens
10.5,2048,256
3.25,512,1024
99.0,4096,128
";

    #[test]
    fn ingests_and_sorts_numeric_rows() {
        let t = IngestedTrace::from_reader(GOOD.as_bytes()).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.records()[0].arrival_s, 3.25);
        assert_eq!(t.records()[2].arrival_s, 99.0);
        assert_eq!(t.skipped_rows(), 0);
        assert!(!t.rebased());
        // Numeric clocks are kept verbatim: phase = first arrival.
        assert_eq!(t.week_phase_s(), 3.25);
        assert_eq!(t.duration_s(), 95.75);
    }

    #[test]
    fn malformed_rows_are_skipped_with_line_numbers() {
        let csv = "\
timestamp_s,context_tokens,generated_tokens,priority
1.0,100,10,low
2.0,zero,10,high
3.0,100,0,low
4.0,100,10,urgent
5.0,100,10,high
";
        let t = IngestedTrace::from_reader(csv.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.skipped_rows(), 3);
        assert!(
            t.row_errors()[0].starts_with("line 3:"),
            "{:?}",
            t.row_errors()
        );
        assert!(t.row_errors()[1].contains("out of range"));
        assert!(t.row_errors()[2].contains("urgent"));
        assert_eq!(t.records()[0].priority, Some(Priority::Low));
        assert_eq!(t.priority_coverage(), 1.0);
    }

    #[test]
    fn datetime_traces_rebase_and_keep_week_phase() {
        let csv = "\
TIMESTAMP,ContextTokens,GeneratedTokens
2024-05-10 06:00:00.000000,1024,128
2024-05-10 06:00:01.500000,1024,128
";
        let t = IngestedTrace::from_reader(csv.as_bytes()).unwrap();
        assert!(t.rebased());
        assert_eq!(t.records()[0].arrival_s, 0.0);
        assert!((t.records()[1].arrival_s - 1.5).abs() < 1e-6);
        // 2024-05-10 was a Friday: phase = 4 days + 6 h into the week.
        assert!((t.week_phase_s() - (4.0 * 86_400.0 + 6.0 * 3600.0)).abs() < 1e-3);
    }

    #[test]
    fn mixed_timestamp_kinds_are_row_errors() {
        let csv = "\
TIMESTAMP,ContextTokens,GeneratedTokens
1.0,100,10
2024-05-10 06:00:00,100,10
";
        let t = IngestedTrace::from_reader(csv.as_bytes()).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.skipped_rows(), 1);
        assert!(t.row_errors()[0].contains("mixed"));
    }

    #[test]
    fn header_only_input_is_no_records() {
        let err =
            IngestedTrace::from_reader("TIMESTAMP,ContextTokens,GeneratedTokens\n".as_bytes())
                .unwrap_err();
        assert!(matches!(err, IngestError::NoRecords));
        let err = IngestedTrace::from_reader("".as_bytes()).unwrap_err();
        assert!(matches!(err, IngestError::EmptyInput));
    }

    #[test]
    fn quoted_fields_and_blank_lines_are_tolerated() {
        let csv = "\
\"TIMESTAMP\",\"ContextTokens\",GeneratedTokens

\"1.0\",100,10
";
        let t = IngestedTrace::from_reader(csv.as_bytes()).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn short_rows_are_skipped() {
        let csv = "\
TIMESTAMP,ContextTokens,GeneratedTokens
1.0,100
2.0,100,10
";
        let t = IngestedTrace::from_reader(csv.as_bytes()).unwrap();
        assert_eq!(t.len(), 1);
        assert!(t.row_errors()[0].contains("expected 3 column(s)"));
    }
}
