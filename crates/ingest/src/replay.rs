//! Verbatim replay of an ingested trace through the cluster simulator.
//!
//! [`TraceReplay`] turns an [`IngestedTrace`] into the `Request` stream
//! the simulator consumes — it implements `Iterator<Item = Request>`,
//! which `polca-cluster`'s blanket impl lifts into a `RequestSource`.
//! With default options the replay is **exact**: every record becomes
//! one request at its recorded arrival time, and when the trace carries
//! a priority column no randomness is consulted at all, so
//! generate → export → ingest → replay round-trips byte-identically.
//!
//! Two knobs perturb the replay deterministically (seeded):
//!
//! * `time_scale` stretches or compresses the clock — `0.5` replays the
//!   trace at double speed, the what-if for faster hardware.
//! * `rate_scale` thins (`< 1`) or replicates (`> 1`) requests — the
//!   load-scaling study of §7 without refitting the trace.

use polca_cluster::{Priority, Request};
use polca_sim::{SimRng, SimTime};

use crate::reader::IngestedTrace;

/// RNG stream for replay-time decisions (priority fill-in, thinning,
/// duplicate jitter). Distinct from every generator stream.
const REPLAY_STREAM: u64 = 0x4E71A;

/// How to replay an ingested trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayOptions {
    /// Multiplies every arrival time. `1.0` replays in trace time.
    pub time_scale: f64,
    /// Target request-rate multiplier. `1.0` replays every record once;
    /// `< 1` thins by random subsampling; `> 1` emits whole duplicate
    /// copies plus a Bernoulli fractional copy, jittered around the
    /// original arrival.
    pub rate_scale: f64,
    /// Seed for all replay randomness (priority fill-in, thinning,
    /// jitter). Unused — zero draws — when `rate_scale == 1.0` and the
    /// trace has a priority column.
    pub seed: u64,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            time_scale: 1.0,
            rate_scale: 1.0,
            seed: 0,
        }
    }
}

/// An ingested trace materialized as a replayable request stream.
#[derive(Debug, Clone)]
pub struct TraceReplay {
    requests: std::vec::IntoIter<Request>,
    n_requests: usize,
}

impl TraceReplay {
    /// Exact replay: one request per record, original timing.
    pub fn new(trace: &IngestedTrace) -> Self {
        Self::with_options(trace, ReplayOptions::default())
    }

    /// Replay with time/rate scaling.
    ///
    /// # Panics
    ///
    /// Panics if `time_scale` or `rate_scale` is not finite and
    /// positive.
    pub fn with_options(trace: &IngestedTrace, options: ReplayOptions) -> Self {
        assert!(
            options.time_scale.is_finite() && options.time_scale > 0.0,
            "time_scale must be positive"
        );
        assert!(
            options.rate_scale.is_finite() && options.rate_scale > 0.0,
            "rate_scale must be positive"
        );
        let mut rng = SimRng::from_seed_stream(options.seed, REPLAY_STREAM);
        // Jitter scale for duplicate copies: the mean inter-arrival gap,
        // so extra load spreads out instead of stacking exact ties.
        let mean_gap = if trace.len() > 1 {
            (trace.duration_s() / (trace.len() - 1) as f64).max(1e-9)
        } else {
            1.0
        };
        let whole_copies = options.rate_scale.floor() as u64;
        let fractional = options.rate_scale.fract();

        let mut arrivals: Vec<(f64, u32, u32, Priority)> = Vec::new();
        for record in trace.records() {
            let copies = whole_copies
                + if fractional > 0.0 && rng.chance(fractional) {
                    1
                } else {
                    0
                };
            for copy in 0..copies {
                let jitter = if copy == 0 {
                    0.0
                } else {
                    rng.uniform(0.0, mean_gap)
                };
                let arrival = (record.arrival_s + jitter).max(0.0) * options.time_scale;
                let priority = match record.priority {
                    Some(p) => p,
                    None => {
                        // No priority column: the paper's 50:50 split.
                        if rng.chance(0.5) {
                            Priority::High
                        } else {
                            Priority::Low
                        }
                    }
                };
                arrivals.push((
                    arrival,
                    record.context_tokens,
                    record.generated_tokens,
                    priority,
                ));
            }
        }
        // Jittered copies can land out of order; ids are reassigned
        // sequentially after sorting so the stream looks exactly like a
        // generator's (stable sort keeps record order for equal times).
        arrivals.sort_by(|a, b| a.0.total_cmp(&b.0));
        let requests: Vec<Request> = arrivals
            .into_iter()
            .enumerate()
            .map(|(id, (arrival, input, output, priority))| {
                Request::new(
                    id as u64,
                    SimTime::from_secs(arrival),
                    input,
                    output,
                    priority,
                )
            })
            .collect();
        let n_requests = requests.len();
        TraceReplay {
            requests: requests.into_iter(),
            n_requests,
        }
    }

    /// Number of requests this replay will emit in total.
    pub fn len(&self) -> usize {
        self.n_requests
    }

    /// Whether the replay is empty (thinning can drop every record).
    pub fn is_empty(&self) -> bool {
        self.n_requests == 0
    }
}

impl Iterator for TraceReplay {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        self.requests.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(csv: &str) -> IngestedTrace {
        IngestedTrace::from_reader(csv.as_bytes()).unwrap()
    }

    const PRIORITIZED: &str = "\
timestamp_s,context_tokens,generated_tokens,priority
0.5,100,50,high
2.25,200,60,low
9.75,300,70,high
";

    #[test]
    fn default_replay_is_verbatim() {
        let t = trace(PRIORITIZED);
        let requests: Vec<Request> = TraceReplay::new(&t).collect();
        assert_eq!(requests.len(), 3);
        assert_eq!(requests[0].id, 0);
        assert_eq!(requests[0].arrival, SimTime::from_secs(0.5));
        assert_eq!(requests[0].input_tokens, 100);
        assert_eq!(requests[0].priority, Priority::High);
        assert_eq!(requests[1].priority, Priority::Low);
        assert_eq!(requests[2].arrival, SimTime::from_secs(9.75));
    }

    #[test]
    fn replay_is_seed_independent_when_trace_has_priorities() {
        let t = trace(PRIORITIZED);
        let a: Vec<Request> = TraceReplay::with_options(
            &t,
            ReplayOptions {
                seed: 1,
                ..ReplayOptions::default()
            },
        )
        .collect();
        let b: Vec<Request> = TraceReplay::with_options(
            &t,
            ReplayOptions {
                seed: 2,
                ..ReplayOptions::default()
            },
        )
        .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn missing_priorities_fill_in_deterministically() {
        let csv = "\
timestamp_s,context_tokens,generated_tokens
0.0,100,50
1.0,100,50
2.0,100,50
3.0,100,50
";
        let t = trace(csv);
        let a: Vec<Request> = TraceReplay::with_options(
            &t,
            ReplayOptions {
                seed: 9,
                ..ReplayOptions::default()
            },
        )
        .collect();
        let b: Vec<Request> = TraceReplay::with_options(
            &t,
            ReplayOptions {
                seed: 9,
                ..ReplayOptions::default()
            },
        )
        .collect();
        assert_eq!(a, b);
        // Arrivals and tokens are still verbatim even when priorities
        // are synthesized.
        assert_eq!(a[3].arrival, SimTime::from_secs(3.0));
        assert!(a.iter().all(|r| r.input_tokens == 100));
    }

    #[test]
    fn time_scale_stretches_the_clock() {
        let t = trace(PRIORITIZED);
        let requests: Vec<Request> = TraceReplay::with_options(
            &t,
            ReplayOptions {
                time_scale: 2.0,
                ..ReplayOptions::default()
            },
        )
        .collect();
        assert_eq!(requests[0].arrival, SimTime::from_secs(1.0));
        assert_eq!(requests[2].arrival, SimTime::from_secs(19.5));
    }

    #[test]
    fn rate_scale_replicates_and_thins() {
        let mut csv = String::from("timestamp_s,context_tokens,generated_tokens,priority\n");
        for i in 0..1000 {
            csv.push_str(&format!("{}.0,100,50,low\n", i));
        }
        let t = trace(&csv);
        let doubled = TraceReplay::with_options(
            &t,
            ReplayOptions {
                rate_scale: 2.0,
                ..ReplayOptions::default()
            },
        );
        assert_eq!(doubled.len(), 2000);
        let halved = TraceReplay::with_options(
            &t,
            ReplayOptions {
                rate_scale: 0.5,
                ..ReplayOptions::default()
            },
        );
        let n = halved.len() as f64;
        assert!((n - 500.0).abs() < 80.0, "thinned to {n}");
        // Ids stay sequential and arrivals sorted after duplication.
        let requests: Vec<Request> = TraceReplay::with_options(
            &t,
            ReplayOptions {
                rate_scale: 1.5,
                ..ReplayOptions::default()
            },
        )
        .collect();
        for (i, r) in requests.iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
        assert!(requests.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }
}
