//! The trace-statistics pass: arrival rates, token-length
//! distributions, burstiness, and the diurnal profile.
//!
//! Everything here is computed once over an [`IngestedTrace`] and then
//! drives both the human-readable `polca-cli ingest` report and the
//! [`calibration`](crate::calibrate) fit.

use polca_cluster::Priority;
use polca_stats::histogram::Histogram;
use polca_stats::{Quantiles, TimeSeries};
use polca_trace::RateSchedule;

use crate::error::IngestError;
use crate::reader::IngestedTrace;

/// Bin width for the fine-grained (burstiness) pass, in seconds.
pub const FINE_BIN_S: f64 = 60.0;

/// Summary statistics of an ingested request trace.
#[derive(Debug, Clone)]
pub struct TraceStats {
    /// Number of requests.
    pub n_requests: usize,
    /// First-to-last arrival span in seconds.
    pub duration_s: f64,
    /// Mean arrival rate in requests/s.
    pub mean_rate: f64,
    /// Hourly arrival rates; timestamps are week-aligned seconds
    /// (`week_phase_s + offset`), so hour-of-day falls out of the
    /// timestamp directly.
    pub hourly_rates: TimeSeries,
    /// Mean arrival rate per hour-of-day slot (NaN for slots the trace
    /// never visits).
    pub diurnal_profile: [f64; 24],
    /// Index of dispersion (variance/mean) of per-minute arrival
    /// counts; 1.0 is Poisson, higher is burstier.
    pub dispersion: f64,
    /// Coefficient of variation of inter-arrival gaps.
    pub interarrival_cv: f64,
    /// Context (prompt) token quantiles.
    pub context_tokens: Quantiles,
    /// Generated (output) token quantiles.
    pub generated_tokens: Quantiles,
    /// Context token histogram (32 bins over the observed range).
    pub context_hist: Histogram,
    /// Generated token histogram (32 bins over the observed range).
    pub generated_hist: Histogram,
    /// Share of requests marked high priority, if the trace carries
    /// priorities.
    pub high_priority_share: Option<f64>,
}

/// Per-bin arrival counts over the trace span, starting at the first
/// arrival.
fn bin_counts(trace: &IngestedTrace, bin_s: f64) -> Vec<u64> {
    let start = trace.start_s();
    let n_bins = ((trace.duration_s() / bin_s).floor() as usize) + 1;
    let mut counts = vec![0u64; n_bins];
    for r in trace.records() {
        let idx = (((r.arrival_s - start) / bin_s).floor() as usize).min(n_bins - 1);
        counts[idx] += 1;
    }
    counts
}

impl TraceStats {
    /// Computes the full statistics pass over `trace`.
    ///
    /// # Errors
    ///
    /// Returns [`IngestError::Calibration`] if the trace spans less
    /// than one fine bin (too short to derive any rate).
    pub fn from_trace(trace: &IngestedTrace) -> Result<Self, IngestError> {
        let n_requests = trace.len();
        let duration_s = trace.duration_s();
        if duration_s < FINE_BIN_S {
            return Err(IngestError::Calibration(format!(
                "trace spans {duration_s:.1} s; need at least {FINE_BIN_S:.0} s to derive rates"
            )));
        }
        let mean_rate = n_requests as f64 / duration_s;

        // Hourly rates, week-aligned. The final (partial) hour is
        // normalized by its actual coverage so it is not biased low.
        let start = trace.start_s();
        let phase = trace.week_phase_s();
        let hour_counts = bin_counts(trace, 3600.0);
        let mut hourly_rates = TimeSeries::new();
        for (k, &c) in hour_counts.iter().enumerate() {
            let covered = (duration_s - k as f64 * 3600.0).min(3600.0);
            if covered < 60.0 {
                continue;
            }
            hourly_rates.push(phase + k as f64 * 3600.0, c as f64 / covered);
        }

        // Diurnal profile: arrivals per hour-of-day slot over the
        // seconds of coverage each slot actually received.
        let mut slot_counts = [0.0f64; 24];
        let mut slot_coverage = [0.0f64; 24];
        for r in trace.records() {
            let hour = (((phase + r.arrival_s - start) / 3600.0).rem_euclid(24.0)) as usize % 24;
            slot_counts[hour] += 1.0;
        }
        // Walk the span hour by hour to accumulate per-slot coverage.
        let mut t = 0.0;
        while t < duration_s {
            let abs = phase + t;
            let hour = ((abs / 3600.0).rem_euclid(24.0)) as usize % 24;
            let until_next = 3600.0 - abs.rem_euclid(3600.0);
            let dt = until_next.min(duration_s - t);
            slot_coverage[hour] += dt;
            t += dt;
        }
        let mut diurnal_profile = [f64::NAN; 24];
        for h in 0..24 {
            if slot_coverage[h] > 0.0 {
                diurnal_profile[h] = slot_counts[h] / slot_coverage[h];
            }
        }

        // Burstiness: index of dispersion of per-minute counts.
        let fine = bin_counts(trace, FINE_BIN_S);
        let m = fine.iter().sum::<u64>() as f64 / fine.len() as f64;
        let var = fine.iter().map(|&c| (c as f64 - m).powi(2)).sum::<f64>() / fine.len() as f64;
        let dispersion = if m > 0.0 { var / m } else { 0.0 };

        // Inter-arrival coefficient of variation.
        let gaps: Vec<f64> = trace
            .records()
            .windows(2)
            .map(|w| w[1].arrival_s - w[0].arrival_s)
            .collect();
        let interarrival_cv = if gaps.is_empty() {
            0.0
        } else {
            let gm = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let gv = gaps.iter().map(|g| (g - gm).powi(2)).sum::<f64>() / gaps.len() as f64;
            if gm > 0.0 {
                gv.sqrt() / gm
            } else {
                0.0
            }
        };

        let ctx: Vec<f64> = trace
            .records()
            .iter()
            .map(|r| r.context_tokens as f64)
            .collect();
        let gen: Vec<f64> = trace
            .records()
            .iter()
            .map(|r| r.generated_tokens as f64)
            .collect();
        let context_tokens = Quantiles::from_samples(&ctx).expect("trace is non-empty");
        let generated_tokens = Quantiles::from_samples(&gen).expect("trace is non-empty");
        let context_hist = token_histogram(&ctx, context_tokens.max);
        let generated_hist = token_histogram(&gen, generated_tokens.max);

        let high_priority_share = if trace.priority_coverage() > 0.0 {
            let high = trace
                .records()
                .iter()
                .filter(|r| r.priority == Some(Priority::High))
                .count();
            Some(high as f64 / n_requests as f64)
        } else {
            None
        };

        Ok(TraceStats {
            n_requests,
            duration_s,
            mean_rate,
            hourly_rates,
            diurnal_profile,
            dispersion,
            interarrival_cv,
            context_tokens,
            generated_tokens,
            context_hist,
            generated_hist,
            high_priority_share,
        })
    }

    /// The multi-line, human-readable statistics report `polca-cli
    /// ingest` prints.
    pub fn report(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "  {} requests over {:.2} h  (mean {:.3} req/s)\n",
            self.n_requests,
            self.duration_s / 3600.0,
            self.mean_rate
        ));
        s.push_str(&format!(
            "  burstiness: dispersion {:.2} (1.0 = Poisson), inter-arrival CV {:.2}\n",
            self.dispersion, self.interarrival_cv
        ));
        s.push_str(&format!(
            "  context tokens   p50 {:>6.0}  p90 {:>6.0}  p99 {:>6.0}  max {:>6.0}\n",
            self.context_tokens.p50,
            self.context_tokens.p90,
            self.context_tokens.p99,
            self.context_tokens.max
        ));
        s.push_str(&format!(
            "  generated tokens p50 {:>6.0}  p90 {:>6.0}  p99 {:>6.0}  max {:>6.0}\n",
            self.generated_tokens.p50,
            self.generated_tokens.p90,
            self.generated_tokens.p99,
            self.generated_tokens.max
        ));
        match self.high_priority_share {
            Some(share) => s.push_str(&format!(
                "  priority: {:.0}% high / {:.0}% low\n",
                share * 100.0,
                (1.0 - share) * 100.0
            )),
            None => s.push_str("  priority: column absent (replay assigns a 50:50 split)\n"),
        }
        let visited: Vec<(usize, f64)> = self
            .diurnal_profile
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_finite())
            .map(|(h, &r)| (h, r))
            .collect();
        if let (Some(&(lo_h, _)), Some(&(hi_h, _))) = (
            visited.iter().min_by(|a, b| a.1.total_cmp(&b.1)),
            visited.iter().max_by(|a, b| a.1.total_cmp(&b.1)),
        ) {
            s.push_str(&format!(
                "  diurnal: trough {lo_h:02}:00, peak {hi_h:02}:00 ({}/24 hour slots observed)\n",
                visited.len()
            ));
        }
        s
    }
}

fn token_histogram(samples: &[f64], max: f64) -> Histogram {
    let mut h = Histogram::new(0.0, max.max(1.0) + 1.0, 32);
    for &v in samples {
        h.record(v);
    }
    h
}

/// The empirical arrival-rate schedule of `trace` at `bin_s`
/// resolution — the "replay without fitting" schedule.
///
/// # Errors
///
/// Returns [`IngestError::Calibration`] if the trace spans less than
/// one bin.
pub fn empirical_schedule(trace: &IngestedTrace, bin_s: f64) -> Result<RateSchedule, IngestError> {
    if trace.duration_s() < bin_s {
        return Err(IngestError::Calibration(format!(
            "trace spans {:.1} s; need at least one {bin_s:.0} s bin",
            trace.duration_s()
        )));
    }
    let rates: Vec<f64> = bin_counts(trace, bin_s)
        .into_iter()
        .map(|c| c as f64 / bin_s)
        .collect();
    Ok(RateSchedule::new(bin_s, rates))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic CSV with one request every 0.5 s for two hours,
    /// alternating priorities.
    fn uniform_csv() -> String {
        let mut s = String::from("timestamp_s,context_tokens,generated_tokens,priority\n");
        let n = 2 * 3600 * 2;
        for i in 0..n {
            let t = i as f64 * 0.5;
            let p = if i % 4 == 0 { "high" } else { "low" };
            s.push_str(&format!("{t},1000,{},{p}\n", 100 + (i % 7) * 10));
        }
        s
    }

    #[test]
    fn uniform_trace_statistics_are_flat() {
        let trace = IngestedTrace::from_reader(uniform_csv().as_bytes()).unwrap();
        let stats = TraceStats::from_trace(&trace).unwrap();
        assert_eq!(stats.n_requests, 14_400);
        assert!((stats.mean_rate - 2.0).abs() < 0.01, "{}", stats.mean_rate);
        // Perfectly regular arrivals: no dispersion, no CV.
        assert!(stats.dispersion < 0.1, "dispersion {}", stats.dispersion);
        assert!(stats.interarrival_cv < 0.01);
        assert!((stats.high_priority_share.unwrap() - 0.25).abs() < 0.01);
        assert_eq!(stats.context_tokens.p50, 1000.0);
        // Only the first two hour slots are observed.
        let visited = stats
            .diurnal_profile
            .iter()
            .filter(|r| r.is_finite())
            .count();
        assert!((2..=3).contains(&visited), "{visited} slots");
        assert!((stats.diurnal_profile[0] - 2.0).abs() < 0.05);
        let report = stats.report();
        assert!(report.contains("14400 requests"));
        assert!(report.contains("p50"));
    }

    #[test]
    fn empirical_schedule_recovers_the_rate() {
        let trace = IngestedTrace::from_reader(uniform_csv().as_bytes()).unwrap();
        let schedule = empirical_schedule(&trace, 300.0).unwrap();
        assert!((schedule.mean_rate() - 2.0).abs() < 0.05);
        assert_eq!(schedule.step_s(), 300.0);
    }

    #[test]
    fn too_short_traces_fail_with_a_diagnostic() {
        let csv = "timestamp_s,context_tokens,generated_tokens\n1.0,10,10\n2.0,10,10\n";
        let trace = IngestedTrace::from_reader(csv.as_bytes()).unwrap();
        let err = TraceStats::from_trace(&trace).unwrap_err();
        assert!(err.to_string().contains("need at least"));
        assert!(empirical_schedule(&trace, 60.0).is_err());
    }
}
