//! Exporting generated request streams as Azure-schema CSV.
//!
//! The inverse of ingestion: any `Request` slice — typically the output
//! of `ArrivalGenerator` — becomes a
//! `timestamp_s,context_tokens,generated_tokens,priority` log that
//! [`TraceReader`](crate::reader::TraceReader) accepts back. Timestamps
//! use Rust's shortest round-trip `f64` formatting, so
//! generate → export → ingest → replay reproduces the original request
//! stream exactly (the round-trip guarantee the integration tests pin
//! down). This is also how the bundled `tests/golden/sample_trace.csv`
//! was produced.

use polca_cluster::{Priority, Request};
use polca_obs::export::csv_table;

/// The header `requests_to_csv` writes.
pub const EXPORT_COLUMNS: [&str; 4] = [
    "timestamp_s",
    "context_tokens",
    "generated_tokens",
    "priority",
];

/// Renders requests as an Azure-schema CSV document (with a `priority`
/// column, which the Azure public trace omits but the replay path uses
/// for exactness).
pub fn requests_to_csv(requests: &[Request]) -> String {
    let rows: Vec<Vec<String>> = requests
        .iter()
        .map(|r| {
            vec![
                // `{}` on f64 is the shortest string that parses back to
                // the same bits — the exact-round-trip invariant.
                format!("{}", r.arrival.as_secs()),
                r.input_tokens.to_string(),
                r.output_tokens.to_string(),
                match r.priority {
                    Priority::High => "high".to_string(),
                    Priority::Low => "low".to_string(),
                },
            ]
        })
        .collect();
    csv_table(&EXPORT_COLUMNS, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polca_sim::SimTime;

    use crate::reader::IngestedTrace;
    use crate::replay::TraceReplay;

    #[test]
    fn export_writes_the_azure_schema() {
        let requests = [
            Request::new(0, SimTime::from_secs(0.125), 100, 50, Priority::High),
            Request::new(1, SimTime::from_secs(2.5), 200, 60, Priority::Low),
        ];
        let csv = requests_to_csv(&requests);
        assert_eq!(
            csv,
            "timestamp_s,context_tokens,generated_tokens,priority\n\
             0.125,100,50,high\n\
             2.5,200,60,low\n"
        );
    }

    #[test]
    fn export_then_ingest_round_trips_exactly() {
        // Awkward timestamps with no finite decimal representation.
        let requests: Vec<Request> = (0..100)
            .map(|i| {
                Request::new(
                    i,
                    SimTime::from_secs(i as f64 / 3.0 + 0.1),
                    (i as u32 % 900) + 1,
                    (i as u32 % 300) + 1,
                    if i % 3 == 0 {
                        Priority::High
                    } else {
                        Priority::Low
                    },
                )
            })
            .collect();
        let csv = requests_to_csv(&requests);
        let trace = IngestedTrace::from_reader(csv.as_bytes()).unwrap();
        let replayed: Vec<Request> = TraceReplay::new(&trace).collect();
        assert_eq!(replayed, requests);
    }
}
