//! Fitting a [`DiurnalPattern`] + workload mix to an ingested trace.
//!
//! The paper extrapolates a short production window to a six-week
//! evaluation horizon by regenerating it synthetically (§6.4). This
//! module does the same for an external trace: a least-squares
//! first-harmonic fit of the hourly arrival rates recovers
//! `base_rate`/`daily_amplitude`/`peak_hour` (the same cosine the
//! generator uses, so a well-behaved trace fits with near-zero bias),
//! residuals against the fit give the short-term-noise and burst
//! parameters, and per-priority token quantiles give a mean-matched
//! workload mix. The fit is validated with the same
//! [`replication_mape`] < 3 % bound the synthetic reference uses.

use polca_cluster::Priority;
use polca_sim::{SimRng, SimTime};
use polca_stats::{Quantiles, TimeSeries};
use polca_trace::replicate::replication_mape;
use polca_trace::{DiurnalPattern, TraceConfig, WorkloadClass};

use crate::error::IngestError;
use crate::reader::IngestedTrace;
use crate::stats::{TraceStats, FINE_BIN_S};

/// RNG stream for schedule extrapolation (distinct from the generator's
/// `paper_mix` stream so calibrated and paper traces never correlate).
const EXTRAPOLATE_STREAM: u64 = 0x16357;

/// A fine bin whose rate exceeds the smooth fit by this ratio is
/// counted as part of a burst episode.
const BURST_THRESHOLD: f64 = 1.3;

/// A fitted trace model: diurnal pattern, workload mix, and the
/// validation error of the fit.
#[derive(Debug, Clone)]
pub struct TraceCalibration {
    /// The fitted arrival-rate pattern.
    pub pattern: DiurnalPattern,
    /// MAPE (percent) between the empirical hourly rates and the fitted
    /// smooth rates — the §6.4 replication bound applies (< 3 %).
    pub mape_pct: f64,
    /// Mean-matched workload classes (one per observed priority, or a
    /// single 50:50 class when the trace has no priority column).
    pub mix: Vec<WorkloadClass>,
}

/// Solves a 3×3 linear system with partial pivoting; `None` when
/// singular.
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        let pivot = (col..3).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let pivot_row = a[col];
        for row in col + 1..3 {
            let f = a[row][col] / pivot_row[col];
            for (entry, p) in a[row].iter_mut().zip(pivot_row).skip(col) {
                *entry -= f * p;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0; 3];
    for row in (0..3).rev() {
        let mut acc = b[row];
        for k in row + 1..3 {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// Least-squares fit of `r(h) = a0 + c·cos(ωh) + s·sin(ωh)` over
/// (week-seconds, rate) samples. Falls back to a constant fit when the
/// window is too short or degenerate for the harmonic to be
/// identifiable.
fn harmonic_fit(samples: &[(f64, f64)]) -> (f64, f64, f64) {
    let omega = std::f64::consts::TAU / 86_400.0;
    let mean = samples.iter().map(|&(_, r)| r).sum::<f64>() / samples.len() as f64;
    if samples.len() < 6 {
        return (mean, 0.0, 0.0);
    }
    let mut ata = [[0.0f64; 3]; 3];
    let mut atb = [0.0f64; 3];
    for &(t, r) in samples {
        let row = [1.0, (omega * t).cos(), (omega * t).sin()];
        for i in 0..3 {
            for j in 0..3 {
                ata[i][j] += row[i] * row[j];
            }
            atb[i] += row[i] * r;
        }
    }
    match solve3(ata, atb) {
        Some([a0, c, s]) if a0 > 0.0 => (a0, c, s),
        _ => (mean, 0.0, 0.0),
    }
}

impl TraceCalibration {
    /// Fits the model to `trace`.
    ///
    /// # Errors
    ///
    /// Returns [`IngestError::Calibration`] when the trace is too
    /// short/flat to derive rates, or when the validation MAPE cannot
    /// be computed (e.g. an all-zero rate profile).
    pub fn fit(trace: &IngestedTrace) -> Result<Self, IngestError> {
        let stats = TraceStats::from_trace(trace)?;
        Self::fit_with_stats(trace, &stats)
    }

    /// Like [`TraceCalibration::fit`], reusing an existing statistics
    /// pass.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TraceCalibration::fit`].
    pub fn fit_with_stats(trace: &IngestedTrace, stats: &TraceStats) -> Result<Self, IngestError> {
        if stats.mean_rate <= 0.0 {
            return Err(IngestError::Calibration(
                "trace has a zero mean arrival rate".into(),
            ));
        }
        // Hourly samples at bin mid-points, week-aligned.
        let hourly: Vec<(f64, f64)> = stats
            .hourly_rates
            .iter()
            .map(|(t, r)| (t + 1800.0, r))
            .collect();

        // Weekend factor: only identifiable when the trace covers most
        // of a week (otherwise weekday would confound with hour-of-day).
        let is_weekend = |t: f64| ((t / 86_400.0).floor() as i64).rem_euclid(7) >= 5;
        let weekend: Vec<f64> = hourly
            .iter()
            .filter(|&&(t, _)| is_weekend(t))
            .map(|&(_, r)| r)
            .collect();
        let weekday: Vec<f64> = hourly
            .iter()
            .filter(|&&(t, _)| !is_weekend(t))
            .map(|&(_, r)| r)
            .collect();
        let weekend_factor =
            if stats.duration_s >= 6.0 * 86_400.0 && weekend.len() >= 12 && !weekday.is_empty() {
                let we = weekend.iter().sum::<f64>() / weekend.len() as f64;
                let wd = weekday.iter().sum::<f64>() / weekday.len() as f64;
                if wd > 0.0 {
                    (we / wd).clamp(0.3, 1.2)
                } else {
                    1.0
                }
            } else {
                1.0
            };

        // De-weekend the samples, then fit the daily harmonic.
        let deweekended: Vec<(f64, f64)> = hourly
            .iter()
            .map(|&(t, r)| (t, if is_weekend(t) { r / weekend_factor } else { r }))
            .collect();
        let (a0, c, s) = harmonic_fit(&deweekended);
        let omega = std::f64::consts::TAU / 86_400.0;
        let base_rate = a0;
        let daily_amplitude = ((c * c + s * s).sqrt() / a0).clamp(0.0, 0.95);
        // r(t) = a0·(1 + A·cos(ω(t − peak))) expands to C = a0·A·cos(ω·peak),
        // S = a0·A·sin(ω·peak), so the peak falls out of atan2.
        let peak_hour = if daily_amplitude > 1e-6 {
            (s.atan2(c) / omega / 3600.0).rem_euclid(24.0)
        } else {
            DiurnalPattern::default().peak_hour
        };

        let smooth = |t: f64| {
            let hour_term = 1.0 + daily_amplitude * (omega * t - omega * peak_hour * 3600.0).cos();
            let weekly = if is_weekend(t) { weekend_factor } else { 1.0 };
            (base_rate * hour_term * weekly).max(0.0)
        };

        // Residuals against the fit at the fine (per-minute) scale:
        // burst episodes first, then short-term noise with the Poisson
        // counting component subtracted.
        let start = trace.start_s();
        let phase = trace.week_phase_s();
        let n_fine = ((stats.duration_s / FINE_BIN_S).floor() as usize) + 1;
        let mut fine_counts = vec![0u64; n_fine];
        for r in trace.records() {
            let idx = (((r.arrival_s - start) / FINE_BIN_S).floor() as usize).min(n_fine - 1);
            fine_counts[idx] += 1;
        }
        let mut burst_bins: Vec<(usize, f64)> = Vec::new();
        let mut residuals: Vec<f64> = Vec::new();
        let mut poisson_var = 0.0;
        for (k, &count) in fine_counts.iter().enumerate() {
            let mid = phase + (k as f64 + 0.5) * FINE_BIN_S;
            let expected = smooth(mid) * FINE_BIN_S;
            if expected < 1.0 {
                continue;
            }
            let ratio = count as f64 / expected;
            if ratio > BURST_THRESHOLD {
                burst_bins.push((k, ratio));
            } else {
                residuals.push(ratio - 1.0);
                poisson_var += 1.0 / expected;
            }
        }
        let short_term_noise = if residuals.is_empty() {
            0.0
        } else {
            let var = residuals.iter().map(|r| r * r).sum::<f64>() / residuals.len() as f64;
            let poisson = poisson_var / residuals.len() as f64;
            (var - poisson).max(0.0).sqrt().min(0.5)
        };
        // Group consecutive burst bins into episodes.
        let mut episodes = 0usize;
        let mut episode_bins = 0usize;
        let mut excess = 0.0;
        let mut prev: Option<usize> = None;
        for &(k, ratio) in &burst_bins {
            if prev != Some(k.wrapping_sub(1)) {
                episodes += 1;
            }
            prev = Some(k);
            episode_bins += 1;
            excess += ratio - 1.0;
        }
        let days = stats.duration_s / 86_400.0;
        let (bursts_per_day, burst_magnitude, burst_duration_s) = if episodes > 0 {
            (
                episodes as f64 / days,
                (excess / episode_bins as f64).clamp(0.1, 2.0),
                (episode_bins as f64 / episodes as f64 * FINE_BIN_S).clamp(30.0, 600.0),
            )
        } else {
            (0.0, 0.6, 90.0)
        };

        let pattern = DiurnalPattern {
            base_rate,
            daily_amplitude,
            peak_hour,
            weekend_factor,
            short_term_noise,
            bursts_per_day,
            burst_magnitude,
            burst_duration_s,
        };

        // §6.4-style validation: empirical hourly rates vs the fitted
        // smooth rates at the same instants.
        let empirical: TimeSeries = hourly.iter().copied().collect();
        let fitted: TimeSeries = hourly.iter().map(|&(t, _)| (t, smooth(t))).collect();
        let mape_pct = replication_mape(&empirical, &fitted)?;

        let mix = fit_mix(trace, stats);
        Ok(TraceCalibration {
            pattern,
            mape_pct,
            mix,
        })
    }

    /// Extrapolates the fit to a [`TraceConfig`] over `horizon` — the
    /// paper's "ingest a day, evaluate six weeks" workflow. The
    /// schedule starts at Monday midnight (the generator convention),
    /// not at the ingested trace's phase.
    pub fn trace_config(&self, seed: u64, horizon: SimTime) -> TraceConfig {
        let mut rng = SimRng::from_seed_stream(seed, EXTRAPOLATE_STREAM);
        let schedule = self.pattern.schedule(horizon.as_secs(), 60.0, &mut rng);
        TraceConfig {
            seed,
            horizon,
            schedule,
            mix: self.mix.clone(),
        }
    }

    /// The multi-line fitted-model report `polca-cli ingest` prints.
    pub fn report(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "  fitted pattern: base {:.3} req/s, amplitude {:.2}, peak {:.1} h, weekend ×{:.2}\n",
            self.pattern.base_rate,
            self.pattern.daily_amplitude,
            self.pattern.peak_hour,
            self.pattern.weekend_factor
        ));
        s.push_str(&format!(
            "                  noise {:.3}, {:.1} bursts/day (×{:.2}, {:.0} s)\n",
            self.pattern.short_term_noise,
            self.pattern.bursts_per_day,
            1.0 + self.pattern.burst_magnitude,
            self.pattern.burst_duration_s
        ));
        for class in &self.mix {
            s.push_str(&format!(
                "  mix: {:<13} share {:.2}  prompt {}..={}  output {}..={}\n",
                class.name,
                class.share,
                class.prompt_range.0,
                class.prompt_range.1,
                class.output_range.0,
                class.output_range.1
            ));
        }
        s.push_str(&format!(
            "  replication MAPE {:.2}% (paper bound: < 3%)\n",
            self.mape_pct
        ));
        s
    }
}

/// A token range that is uniform-sampleable and mean-matched: the
/// range midpoint equals the observed mean, clipped to the observed
/// min/max so extrapolated requests stay in-distribution.
fn mean_matched_range(q: &Quantiles) -> (u32, u32) {
    let half = (q.mean - q.min).min(q.max - q.mean).max(0.0);
    let lo = (q.mean - half).round().max(1.0) as u32;
    let hi = (q.mean + half).round() as u32;
    (lo, hi.max(lo))
}

fn class_for(
    name: &'static str,
    ctx: &[f64],
    gen: &[f64],
    share: f64,
    high_priority_fraction: f64,
) -> Option<WorkloadClass> {
    let prompt = mean_matched_range(&Quantiles::from_samples(ctx)?);
    let output = mean_matched_range(&Quantiles::from_samples(gen)?);
    Some(WorkloadClass {
        name,
        prompt_range: prompt,
        output_range: output,
        share,
        high_priority_fraction,
    })
}

fn fit_mix(trace: &IngestedTrace, stats: &TraceStats) -> Vec<WorkloadClass> {
    let records = trace.records();
    let collect = |want: Option<Priority>| -> (Vec<f64>, Vec<f64>) {
        let mut ctx = Vec::new();
        let mut gen = Vec::new();
        for r in records {
            if want.is_none() || r.priority == want {
                ctx.push(r.context_tokens as f64);
                gen.push(r.generated_tokens as f64);
            }
        }
        (ctx, gen)
    };
    match stats.high_priority_share {
        Some(high_share) => {
            let (hi_ctx, hi_gen) = collect(Some(Priority::High));
            let (lo_ctx, lo_gen) = collect(Some(Priority::Low));
            let mut mix = Vec::new();
            if let Some(c) = class_for("IngestedHigh", &hi_ctx, &hi_gen, high_share, 1.0) {
                mix.push(c);
            }
            if let Some(c) = class_for("IngestedLow", &lo_ctx, &lo_gen, 1.0 - high_share, 0.0) {
                mix.push(c);
            }
            if mix.is_empty() {
                // Defensive: priority column present but unparseable mix.
                let (ctx, gen) = collect(None);
                mix.extend(class_for("Ingested", &ctx, &gen, 1.0, 0.5));
            }
            mix
        }
        None => {
            let (ctx, gen) = collect(None);
            // No priority column: assume the paper's 50:50 split so the
            // POLCA/baseline comparison still has two tiers to work on.
            class_for("Ingested", &ctx, &gen, 1.0, 0.5)
                .into_iter()
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polca_trace::ArrivalGenerator;

    use crate::export::requests_to_csv;
    use crate::reader::IngestedTrace;

    fn synthetic_trace(pattern: &DiurnalPattern, days: f64, seed: u64) -> IngestedTrace {
        let horizon = SimTime::from_days(days);
        let mut rng = SimRng::from_seed_stream(seed, 0xF17);
        let schedule = pattern.schedule(horizon.as_secs(), 60.0, &mut rng);
        let config = TraceConfig {
            seed,
            horizon,
            schedule,
            mix: WorkloadClass::table6(),
        };
        let requests: Vec<_> = ArrivalGenerator::new(&config).collect();
        let csv = requests_to_csv(&requests);
        IngestedTrace::from_reader(csv.as_bytes()).unwrap()
    }

    #[test]
    fn fit_recovers_a_known_diurnal_pattern() {
        let truth = DiurnalPattern {
            base_rate: 1.2,
            daily_amplitude: 0.3,
            peak_hour: 15.0,
            weekend_factor: 1.0,
            short_term_noise: 0.02,
            bursts_per_day: 0.0,
            ..DiurnalPattern::default()
        };
        let trace = synthetic_trace(&truth, 2.0, 11);
        let cal = TraceCalibration::fit(&trace).unwrap();
        let p = &cal.pattern;
        assert!(
            (p.base_rate - truth.base_rate).abs() / truth.base_rate < 0.05,
            "base {}",
            p.base_rate
        );
        assert!(
            (p.daily_amplitude - truth.daily_amplitude).abs() < 0.08,
            "amplitude {}",
            p.daily_amplitude
        );
        assert!(
            (p.peak_hour - truth.peak_hour).abs() < 1.0,
            "peak {}",
            p.peak_hour
        );
        assert!(cal.mape_pct < 3.0, "MAPE {:.2}%", cal.mape_pct);
        // Table 6 priorities survive into the fitted mix.
        assert_eq!(cal.mix.len(), 2);
        let high_share: f64 = cal
            .mix
            .iter()
            .map(|c| c.share * c.high_priority_fraction)
            .sum();
        assert!((high_share - 0.5).abs() < 0.05, "high share {high_share}");
    }

    #[test]
    fn extrapolated_config_matches_the_fitted_rate() {
        let truth = DiurnalPattern {
            base_rate: 0.8,
            short_term_noise: 0.02,
            bursts_per_day: 0.0,
            weekend_factor: 1.0,
            ..DiurnalPattern::default()
        };
        let trace = synthetic_trace(&truth, 1.0, 5);
        let cal = TraceCalibration::fit(&trace).unwrap();
        let config = cal.trace_config(7, SimTime::from_days(2.0));
        assert_eq!(config.seed, 7);
        assert!((config.schedule.horizon_s() - 2.0 * 86_400.0).abs() < 120.0);
        assert!(
            (config.schedule.mean_rate() - truth.base_rate).abs() / truth.base_rate < 0.1,
            "mean rate {}",
            config.schedule.mean_rate()
        );
    }

    #[test]
    fn flat_trace_fits_with_near_zero_amplitude() {
        let mut csv = String::from("timestamp_s,context_tokens,generated_tokens\n");
        for i in 0..14_400 {
            csv.push_str(&format!("{},1000,500\n", i as f64 * 0.5));
        }
        let trace = IngestedTrace::from_reader(csv.as_bytes()).unwrap();
        let cal = TraceCalibration::fit(&trace).unwrap();
        assert!((cal.pattern.base_rate - 2.0).abs() < 0.05);
        assert!(cal.pattern.daily_amplitude < 0.05);
        assert!(cal.pattern.short_term_noise < 0.02);
        assert!(cal.mape_pct < 1.0, "MAPE {:.2}%", cal.mape_pct);
        // No priority column: one 50:50 class with a tight token range.
        assert_eq!(cal.mix.len(), 1);
        assert_eq!(cal.mix[0].high_priority_fraction, 0.5);
        assert_eq!(cal.mix[0].prompt_range, (1000, 1000));
        let report = cal.report();
        assert!(report.contains("MAPE"));
    }

    #[test]
    fn mean_matched_ranges_preserve_the_mean() {
        let q = Quantiles::from_samples(&[100.0, 200.0, 900.0]).unwrap();
        let (lo, hi) = mean_matched_range(&q);
        assert_eq!((lo + hi) / 2, 400);
        assert!(lo >= 100 && hi <= 900);
    }
}
