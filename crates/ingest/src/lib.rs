//! # polca-ingest — real-trace ingestion, calibration, and replay
//!
//! The paper evaluates POLCA on production traces from Azure's LLM
//! inference fleet; the public artifact of that data is the
//! Azure-2024-style request log (`TIMESTAMP,ContextTokens,
//! GeneratedTokens`). This crate connects such logs to the simulator in
//! both directions:
//!
//! 1. **Ingest** ([`reader`]) — a dependency-free streaming CSV reader
//!    with a typed schema tolerant of header variants
//!    ([`schema::TraceSchema`]), skipping malformed rows with
//!    line-numbered diagnostics.
//! 2. **Characterize** ([`stats`]) — arrival rates, burstiness, diurnal
//!    profile, and token-length distributions of the ingested window.
//! 3. **Calibrate** ([`calibrate`]) — a least-squares fit of the
//!    generator's own diurnal model to the trace, validated with the
//!    §6.4 replication-MAPE bound, so a single ingested day can be
//!    extrapolated to the paper's six-week evaluation horizon.
//! 4. **Replay** ([`replay`]) — the trace verbatim as a
//!    `RequestSource` for `polca-cluster`, with deterministic
//!    time-scaling and rate-scaling knobs.
//! 5. **Export** ([`export`]) — the inverse map, writing generated
//!    traces back out in the same schema; export → ingest → replay is
//!    exact.
//!
//! ```
//! use polca_ingest::{IngestedTrace, TraceCalibration, TraceReplay};
//!
//! let csv = "\
//! timestamp_s,context_tokens,generated_tokens,priority
//! 0.5,1200,300,high
//! 1.5,800,150,low
//! 3.0,1500,420,high
//! ";
//! let trace = IngestedTrace::from_reader(csv.as_bytes()).unwrap();
//! assert_eq!(trace.len(), 3);
//!
//! // Replay it through the simulator exactly as recorded.
//! let requests: Vec<_> = TraceReplay::new(&trace).collect();
//! assert_eq!(requests[2].input_tokens, 1500);
//! ```

#![warn(missing_docs)]

pub mod calibrate;
pub mod error;
pub mod export;
pub mod reader;
pub mod replay;
pub mod schema;
pub mod stats;

pub use calibrate::TraceCalibration;
pub use error::IngestError;
pub use export::requests_to_csv;
pub use reader::{IngestedTrace, TraceReader};
pub use replay::{ReplayOptions, TraceReplay};
pub use schema::{TimestampKind, TraceRecord, TraceSchema};
pub use stats::{empirical_schedule, TraceStats, FINE_BIN_S};
