//! Incident lifecycle: correlating alerts into trackable incidents.
//!
//! Every firing alert either joins the open incident for its rule or
//! opens a new one. An incident walks a four-state lifecycle:
//!
//! ```text
//! Open ──(repeat alerts / severity upgrade)──▶ Escalated
//!   │                                             │
//!   └────────────(rule clears)────────────────────┤
//!                                                 ▼
//!                                        MitigateObserved
//!                                                 │ (quiet for
//!                                                 ▼  resolve_after_s)
//!                                             Resolved
//! ```
//!
//! A regression (the rule fires again while mitigation is being
//! observed) moves the incident back to `Escalated` — flapping alerts
//! produce one incident with a long tail, not a stack of duplicates.
//!
//! Each incident records the *detection lag*: the gap between the first
//! ground-truth threshold crossing (known only to the simulator) and
//! the moment the watch plane — which sees only the delayed OOB feed —
//! actually fired. With the paper's 2 s telemetry propagation delay and
//! a zero-hold rule, the lag is exactly 2 s.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use polca_obs::json::{esc, num};

use crate::engine::Alert;
use crate::rules::Severity;

/// Where an incident is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentState {
    /// The first alert fired; the condition is live.
    Open,
    /// Repeated alerts or a severity upgrade raised the stakes.
    Escalated,
    /// The rule cleared; watching for the condition to stay gone.
    MitigateObserved,
    /// Quiet for the full cool-down; the incident is closed.
    Resolved,
}

impl IncidentState {
    /// Stable machine-readable tag used in `incidents.jsonl`.
    pub fn tag(self) -> &'static str {
        match self {
            IncidentState::Open => "open",
            IncidentState::Escalated => "escalated",
            IncidentState::MitigateObserved => "mitigate_observed",
            IncidentState::Resolved => "resolved",
        }
    }
}

/// One correlated incident.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// Monotonic incident id (order of opening).
    pub id: u64,
    /// The rule whose alerts this incident correlates.
    pub rule: String,
    /// Highest severity seen across the incident's alerts.
    pub severity: Severity,
    /// Current lifecycle state.
    pub state: IncidentState,
    /// When the opening alert fired (simulation seconds).
    pub opened_t: f64,
    /// Ground-truth time the underlying condition first held, when the
    /// simulator disclosed it for annotation (never used for firing).
    pub truth_t: Option<f64>,
    /// `opened_t - truth_t`: how long the delayed telemetry hid the
    /// condition from the watch plane.
    pub detection_lag_s: Option<f64>,
    /// When the incident escalated, if it did.
    pub escalated_t: Option<f64>,
    /// When the rule last cleared (mitigation observed).
    pub mitigated_t: Option<f64>,
    /// When the incident resolved, if it did.
    pub resolved_t: Option<f64>,
    /// Total alerts correlated into this incident.
    pub alerts: u64,
    /// Most extreme rule value seen (e.g. peak power fraction).
    pub peak_value: f64,
    /// Detail line from the most recent alert.
    pub detail: String,
}

impl Incident {
    /// Serializes the incident as one JSONL line (stable key order,
    /// `null` for absent optionals, no trailing newline).
    pub fn to_json(&self) -> String {
        fn opt(v: Option<f64>) -> String {
            v.map(num).unwrap_or_else(|| "null".to_string())
        }
        let mut s = String::with_capacity(256);
        let _ = write!(
            s,
            "{{\"id\":{},\"rule\":\"{}\",\"severity\":\"{}\",\"state\":\"{}\"",
            self.id,
            esc(&self.rule),
            self.severity,
            self.state.tag()
        );
        let _ = write!(
            s,
            ",\"opened_t\":{},\"truth_t\":{},\"detection_lag_s\":{}",
            num(self.opened_t),
            opt(self.truth_t),
            opt(self.detection_lag_s)
        );
        let _ = write!(
            s,
            ",\"escalated_t\":{},\"mitigated_t\":{},\"resolved_t\":{}",
            opt(self.escalated_t),
            opt(self.mitigated_t),
            opt(self.resolved_t)
        );
        let _ = write!(
            s,
            ",\"alerts\":{},\"peak_value\":{},\"detail\":\"{}\"}}",
            self.alerts,
            num(self.peak_value),
            esc(&self.detail)
        );
        s
    }
}

/// The incident store: correlation, escalation, and resolution policy.
#[derive(Debug, Clone)]
pub struct IncidentLog {
    incidents: Vec<Incident>,
    /// rule name → index into `incidents` of the open incident.
    open_by_rule: BTreeMap<String, usize>,
    escalate_after: u64,
    resolve_after_s: f64,
}

impl IncidentLog {
    /// A log that escalates after `escalate_after` correlated alerts
    /// and resolves after `resolve_after_s` quiet seconds.
    pub fn new(escalate_after: u64, resolve_after_s: f64) -> Self {
        IncidentLog {
            incidents: Vec::new(),
            open_by_rule: BTreeMap::new(),
            escalate_after: escalate_after.max(1),
            resolve_after_s,
        }
    }

    /// Folds a firing alert into the open incident for its rule, or
    /// opens a new incident.
    pub fn on_alert(&mut self, alert: &Alert) {
        if let Some(&idx) = self.open_by_rule.get(&alert.rule) {
            let inc = &mut self.incidents[idx];
            inc.alerts += 1;
            inc.peak_value = inc.peak_value.max(alert.value);
            inc.detail = alert.detail.clone();
            let upgraded = alert.severity > inc.severity;
            inc.severity = inc.severity.max(alert.severity);
            match inc.state {
                IncidentState::MitigateObserved => {
                    // Regression: the condition came back during the
                    // cool-down. Escalate rather than reopen quietly.
                    inc.state = IncidentState::Escalated;
                    inc.mitigated_t = None;
                    inc.escalated_t.get_or_insert(alert.t);
                }
                IncidentState::Open => {
                    if upgraded || inc.alerts >= self.escalate_after {
                        inc.state = IncidentState::Escalated;
                        inc.escalated_t = Some(alert.t);
                    }
                }
                IncidentState::Escalated => {}
                IncidentState::Resolved => unreachable!("resolved incidents leave open_by_rule"),
            }
        } else {
            let id = self.incidents.len() as u64;
            self.open_by_rule
                .insert(alert.rule.clone(), self.incidents.len());
            self.incidents.push(Incident {
                id,
                rule: alert.rule.clone(),
                severity: alert.severity,
                state: IncidentState::Open,
                opened_t: alert.t,
                truth_t: alert.truth_t,
                detection_lag_s: alert.truth_t.map(|tt| alert.t - tt),
                escalated_t: None,
                mitigated_t: None,
                resolved_t: None,
                alerts: 1,
                peak_value: alert.value,
                detail: alert.detail.clone(),
            });
        }
    }

    /// Notes that `rule` cleared at `t` (mitigation observed).
    pub fn on_clear(&mut self, rule: &str, t: f64) {
        if let Some(&idx) = self.open_by_rule.get(rule) {
            let inc = &mut self.incidents[idx];
            if inc.state != IncidentState::MitigateObserved {
                inc.state = IncidentState::MitigateObserved;
                inc.mitigated_t = Some(t);
            }
        }
    }

    /// Advances resolution timers: incidents quiet since mitigation for
    /// the full cool-down are resolved.
    pub fn on_tick(&mut self, now: f64) {
        let resolve_after_s = self.resolve_after_s;
        let incidents = &mut self.incidents;
        self.open_by_rule.retain(|_, &mut idx| {
            let inc = &mut incidents[idx];
            match (inc.state, inc.mitigated_t) {
                (IncidentState::MitigateObserved, Some(mt)) if now - mt >= resolve_after_s => {
                    inc.state = IncidentState::Resolved;
                    inc.resolved_t = Some(now);
                    false
                }
                _ => true,
            }
        });
    }

    /// Final resolution pass at the end of the run. Incidents still in
    /// their cool-down or still firing keep their live state — a
    /// truthful postmortem says "unresolved at end of run".
    pub fn finalize(&mut self, t_end: f64) {
        self.on_tick(t_end);
    }

    /// All incidents, in opening order.
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// The full log as JSON Lines (one incident per line).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for inc in &self.incidents {
            s.push_str(&inc.to_json());
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alert(t: f64, rule: &str, severity: Severity, truth_t: Option<f64>) -> Alert {
        Alert {
            t,
            rule: rule.to_string(),
            severity,
            value: t / 100.0,
            truth_t,
            detail: format!("{rule} fired"),
        }
    }

    #[test]
    fn lifecycle_walks_open_escalate_mitigate_resolve() {
        let mut log = IncidentLog::new(3, 300.0);
        log.on_alert(&alert(10.0, "hot", Severity::Warning, Some(8.0)));
        assert_eq!(log.incidents()[0].state, IncidentState::Open);
        assert_eq!(log.incidents()[0].detection_lag_s, Some(2.0));

        log.on_alert(&alert(12.0, "hot", Severity::Warning, None));
        log.on_alert(&alert(14.0, "hot", Severity::Warning, None));
        assert_eq!(log.incidents()[0].state, IncidentState::Escalated);
        assert_eq!(log.incidents()[0].escalated_t, Some(14.0));

        log.on_clear("hot", 20.0);
        assert_eq!(log.incidents()[0].state, IncidentState::MitigateObserved);

        log.on_tick(100.0); // too soon
        assert_eq!(log.incidents()[0].state, IncidentState::MitigateObserved);
        log.on_tick(321.0);
        assert_eq!(log.incidents()[0].state, IncidentState::Resolved);
        assert_eq!(log.incidents()[0].resolved_t, Some(321.0));
        assert_eq!(log.incidents()[0].alerts, 3);
    }

    #[test]
    fn severity_upgrade_escalates_immediately() {
        let mut log = IncidentLog::new(10, 300.0);
        log.on_alert(&alert(1.0, "hot", Severity::Warning, None));
        log.on_alert(&alert(2.0, "hot", Severity::Critical, None));
        assert_eq!(log.incidents()[0].state, IncidentState::Escalated);
        assert_eq!(log.incidents()[0].severity, Severity::Critical);
    }

    #[test]
    fn regression_during_cooldown_escalates_not_duplicates() {
        let mut log = IncidentLog::new(5, 300.0);
        log.on_alert(&alert(1.0, "hot", Severity::Warning, None));
        log.on_clear("hot", 5.0);
        log.on_alert(&alert(50.0, "hot", Severity::Warning, None));
        assert_eq!(log.incidents().len(), 1);
        assert_eq!(log.incidents()[0].state, IncidentState::Escalated);
        assert_eq!(log.incidents()[0].mitigated_t, None);
    }

    #[test]
    fn resolved_rule_opens_a_fresh_incident_next_time() {
        let mut log = IncidentLog::new(3, 10.0);
        log.on_alert(&alert(1.0, "hot", Severity::Warning, None));
        log.on_clear("hot", 2.0);
        log.on_tick(20.0);
        log.on_alert(&alert(30.0, "hot", Severity::Warning, None));
        assert_eq!(log.incidents().len(), 2);
        assert_eq!(log.incidents()[1].id, 1);
        assert_eq!(log.incidents()[1].state, IncidentState::Open);
    }

    #[test]
    fn unresolved_incidents_stay_live_at_finalize() {
        let mut log = IncidentLog::new(3, 300.0);
        log.on_alert(&alert(1.0, "hot", Severity::Warning, None));
        log.finalize(100.0);
        assert_eq!(log.incidents()[0].state, IncidentState::Open);
    }

    #[test]
    fn jsonl_is_stable_and_null_safe() {
        let mut log = IncidentLog::new(3, 300.0);
        log.on_alert(&alert(10.0, "hot", Severity::Critical, Some(8.0)));
        let line = log.to_jsonl();
        assert_eq!(
            line,
            "{\"id\":0,\"rule\":\"hot\",\"severity\":\"critical\",\"state\":\"open\",\
             \"opened_t\":10,\"truth_t\":8,\"detection_lag_s\":2,\
             \"escalated_t\":null,\"mitigated_t\":null,\"resolved_t\":null,\
             \"alerts\":1,\"peak_value\":0.1,\"detail\":\"hot fired\"}\n"
        );
        assert_eq!(log.to_jsonl(), line);
    }
}
