//! The streaming rule-evaluation engine.
//!
//! [`WatchEngine`] consumes three feeds:
//!
//! * **observed** — the delayed, gappy row-power readings, exactly what
//!   the in-simulation controller sees (`DelayedSignal::read`). This is
//!   the *only* feed that can fire power rules.
//! * **events** — the obs event stream (caps, brakes, completions…),
//!   which drives `count` rules and the SLO burn tracker.
//! * **truth** — the simulator's ground-truth row power. The engine
//!   uses it *exclusively* to timestamp when a condition actually
//!   began, so each incident can report its detection lag. Truth never
//!   asserts, clears, or otherwise influences an alert.
//!
//! Everything is a pure function of the feed contents, so a fixed-seed
//! simulation produces byte-identical alert and incident logs.

use std::collections::VecDeque;
use std::sync::Arc;

use polca_cluster::Priority;
use polca_obs::{CarbonSignal, Event};

use crate::burn::{BurnConfig, BurnSignal, BurnTracker, BurnTransition};
use crate::incident::IncidentLog;
use crate::rules::{Rule, RuleKind, RuleSet, Severity};

/// Configuration for the built-in carbon rules. Like every other rule,
/// they run on the *delayed* observed power feed: the watch plane sees
/// emissions only as fast as the out-of-band telemetry discloses them.
#[derive(Debug, Clone)]
pub struct WatchEnergyConfig {
    /// Grid carbon-intensity signal (shared with the polca-energy
    /// ledger, so the watch plane and the ground-truth accounting use
    /// the same grid model).
    pub signal: Arc<CarbonSignal>,
    /// PUE multiplier applied to observed IT power before conversion
    /// to emissions.
    pub pue: f64,
    /// Carbon budget: sustained emission rate, grams CO2e per hour,
    /// above which the `carbon-budget-burn` rule fires.
    pub budget_g_per_h: f64,
    /// Efficiency floor: grams CO2e per output token above which the
    /// `co2e-per-token-high` rule fires.
    pub co2e_per_token_g: f64,
    /// Rolling evaluation window, seconds. Both rules need at least
    /// half a window of observed samples before they judge, mirroring
    /// the SLO burn-rate discipline.
    pub window_s: f64,
}

impl WatchEnergyConfig {
    /// A config with the default 10-minute window.
    pub fn new(signal: CarbonSignal, pue: f64, budget_g_per_h: f64, co2e_per_token_g: f64) -> Self {
        WatchEnergyConfig {
            signal: Arc::new(signal),
            pue,
            budget_g_per_h,
            co2e_per_token_g,
            window_s: 600.0,
        }
    }
}

/// Runtime state of the carbon rules.
#[derive(Debug, Clone)]
struct EnergyRt {
    cfg: WatchEnergyConfig,
    /// Last observed `(t, watts)` — trapezoid partner for the next
    /// sample. Reset on telemetry gaps so silent failures never get
    /// emissions invented across them.
    prev: Option<(f64, f64)>,
    /// Cumulative observed emissions, grams CO2e.
    co2e_cum: f64,
    /// `(t, co2e_cum)` at each observed tick within the window.
    window: VecDeque<(f64, f64)>,
    /// Output-token completions within the window.
    token_times: VecDeque<(f64, u64)>,
    /// Running sum of `token_times` counts.
    tokens_window: u64,
    burn_asserted: bool,
    per_token_asserted: bool,
}

impl EnergyRt {
    fn new(cfg: WatchEnergyConfig) -> Self {
        EnergyRt {
            cfg,
            prev: None,
            co2e_cum: 0.0,
            window: VecDeque::new(),
            token_times: VecDeque::new(),
            tokens_window: 0,
            burn_asserted: false,
            per_token_asserted: false,
        }
    }
}

/// Rule name of the carbon-budget burn-rate rule.
pub const CARBON_BUDGET_RULE: &str = "carbon-budget-burn";
/// Rule name of the per-token carbon-efficiency rule.
pub const CARBON_PER_TOKEN_RULE: &str = "co2e-per-token-high";

/// One fired alert.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// When the alert fired (simulation seconds, observed-feed time).
    pub t: f64,
    /// Name of the rule (or synthetic burn rule) that fired.
    pub rule: String,
    /// Severity at firing time.
    pub severity: Severity,
    /// The rule's measured value at firing (power fraction, event
    /// count, burn multiple, or staleness gap — rule-dependent).
    pub value: f64,
    /// Ground-truth time the condition first held, if the truth feed
    /// disclosed it. Annotation only.
    pub truth_t: Option<f64>,
    /// Human-readable description.
    pub detail: String,
}

/// Per-rule runtime state.
#[derive(Debug, Clone)]
enum RuleRt {
    Threshold {
        /// Alert currently asserted.
        asserted: bool,
        /// Observed feed first went ≥ `over` at this time (hold timer).
        above_since: Option<f64>,
        /// Ground-truth shadow: currently ≥ `over`.
        truth_above: bool,
        /// Ground-truth shadow: first crossing of the current episode.
        truth_crossed_at: Option<f64>,
    },
    Rate {
        /// `(t, fraction)` observed samples within the window, kept as
        /// a monotonic min-deque: the front is always the window
        /// minimum (sliding-window-minimum, amortized O(1) per sample).
        window: VecDeque<(f64, f64)>,
        asserted: bool,
        /// Ground-truth shadow window (same min-deque discipline).
        truth_window: VecDeque<(f64, f64)>,
        truth_risen: bool,
        truth_crossed_at: Option<f64>,
    },
    Absence {
        asserted: bool,
    },
    Count {
        /// Firing-event timestamps within the window.
        times: VecDeque<f64>,
        asserted: bool,
    },
}

/// Pushes `(now, frac)` onto a sliding-window min-deque and expires
/// entries older than `window_s`, returning the current window minimum.
/// Samples dominated by a newer, lower reading are dropped on entry, so
/// the deque stays sorted ascending by fraction and the front is the
/// minimum of the live window.
fn window_min(window: &mut VecDeque<(f64, f64)>, now: f64, frac: f64, window_s: f64) -> f64 {
    while window.back().is_some_and(|&(_, f)| f >= frac) {
        window.pop_back();
    }
    window.push_back((now, frac));
    while window.front().is_some_and(|&(t, _)| now - t > window_s) {
        window.pop_front();
    }
    window.front().map_or(frac, |&(_, f)| f)
}

impl RuleRt {
    fn new(rule: &Rule) -> RuleRt {
        match &rule.kind {
            RuleKind::Threshold { .. } => RuleRt::Threshold {
                asserted: false,
                above_since: None,
                truth_above: false,
                truth_crossed_at: None,
            },
            RuleKind::Rate { .. } => RuleRt::Rate {
                window: VecDeque::new(),
                asserted: false,
                truth_window: VecDeque::new(),
                truth_risen: false,
                truth_crossed_at: None,
            },
            RuleKind::Absence { .. } => RuleRt::Absence { asserted: false },
            RuleKind::Count { .. } => RuleRt::Count {
                times: VecDeque::new(),
                asserted: false,
            },
        }
    }
}

/// The engine: rules + burn tracker + incident log over the feeds.
#[derive(Debug, Clone)]
pub struct WatchEngine {
    provisioned_watts: f64,
    rules: Vec<Rule>,
    rt: Vec<RuleRt>,
    /// Indices of `count` rules — the only ones the (high-volume) event
    /// feed drives, precomputed so `event()` skips the rest.
    count_idx: Vec<usize>,
    burn: BurnTracker,
    energy: Option<EnergyRt>,
    incidents: IncidentLog,
    alerts: Vec<Alert>,
    /// Time of the last observed (non-gap) sample.
    last_observed_t: Option<f64>,
    /// Next time burn levels are worth re-deriving. The tracker buckets
    /// completions at `BurnConfig::bucket_s`, so its windowed sums only
    /// change at bucket granularity — re-evaluating on every obs event
    /// (the busiest feed) would scan the full slow window thousands of
    /// times per simulated hour for identical answers.
    next_burn_eval_t: f64,
}

impl WatchEngine {
    /// An engine for a row provisioned at `provisioned_watts`.
    pub fn new(
        provisioned_watts: f64,
        rules: &RuleSet,
        burn: BurnConfig,
        escalate_after_alerts: u64,
        resolve_after_s: f64,
    ) -> Self {
        let rules: Vec<Rule> = rules.rules().to_vec();
        let rt = rules.iter().map(RuleRt::new).collect();
        let count_idx = rules
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r.kind, RuleKind::Count { .. }))
            .map(|(i, _)| i)
            .collect();
        WatchEngine {
            provisioned_watts,
            rules,
            rt,
            count_idx,
            burn: BurnTracker::new(burn),
            energy: None,
            incidents: IncidentLog::new(escalate_after_alerts, resolve_after_s),
            alerts: Vec::new(),
            last_observed_t: None,
            next_burn_eval_t: 0.0,
        }
    }

    fn fire(alerts: &mut Vec<Alert>, incidents: &mut IncidentLog, alert: Alert) {
        incidents.on_alert(&alert);
        alerts.push(alert);
    }

    /// Enables the built-in carbon rules ([`CARBON_BUDGET_RULE`] and
    /// [`CARBON_PER_TOKEN_RULE`]). They are constructed here rather
    /// than in the default rule set because they need a grid signal
    /// and budgets that have no meaningful universal default.
    pub fn attach_energy(&mut self, cfg: WatchEnergyConfig) {
        self.energy = Some(EnergyRt::new(cfg));
    }

    /// Carbon bookkeeping for one observed sample: integrate delayed
    /// power into emissions and evaluate both carbon rules.
    fn energy_observe(&mut self, now: f64, watts: f64) {
        let Some(e) = self.energy.as_mut() else {
            return;
        };
        if let Some((pt, pw)) = e.prev {
            let dt = now - pt;
            if dt > 0.0 {
                let wh = 0.5 * (pw + watts) * dt / 3600.0;
                let mid = 0.5 * (pt + now);
                e.co2e_cum += wh * e.cfg.pue / 1000.0 * e.cfg.signal.g_per_kwh(mid);
            }
        }
        e.prev = Some((now, watts));
        e.window.push_back((now, e.co2e_cum));
        while e
            .window
            .front()
            .is_some_and(|&(t, _)| now - t > e.cfg.window_s)
        {
            e.window.pop_front();
        }
        while e
            .token_times
            .front()
            .is_some_and(|&(t, _)| now - t > e.cfg.window_s)
        {
            e.tokens_window -= e.token_times.pop_front().expect("front checked").1;
        }
        let Some(&(t0, c0)) = e.window.front() else {
            return;
        };
        let span = now - t0;
        // Burn-rate style guard: judge only once at least half a window
        // of samples has accumulated.
        if span < 0.5 * e.cfg.window_s {
            return;
        }
        let window_g = e.co2e_cum - c0;
        let rate_g_per_h = window_g / span * 3600.0;
        if rate_g_per_h >= e.cfg.budget_g_per_h {
            if !e.burn_asserted {
                e.burn_asserted = true;
                Self::fire(
                    &mut self.alerts,
                    &mut self.incidents,
                    Alert {
                        t: now,
                        rule: CARBON_BUDGET_RULE.to_string(),
                        severity: Severity::Critical,
                        value: rate_g_per_h,
                        // Emissions are only knowable through the
                        // delayed feed; there is no truth shadow.
                        truth_t: None,
                        detail: format!(
                            "observed emissions at {rate_g_per_h:.1} gCO2e/h over {span:.0}s \
                             (budget {:.1} gCO2e/h)",
                            e.cfg.budget_g_per_h
                        ),
                    },
                );
            }
        } else if rate_g_per_h < 0.9 * e.cfg.budget_g_per_h && e.burn_asserted {
            e.burn_asserted = false;
            self.incidents.on_clear(CARBON_BUDGET_RULE, now);
        }
        if e.tokens_window > 0 {
            let per_token = window_g / e.tokens_window as f64;
            if per_token >= e.cfg.co2e_per_token_g {
                if !e.per_token_asserted {
                    e.per_token_asserted = true;
                    Self::fire(
                        &mut self.alerts,
                        &mut self.incidents,
                        Alert {
                            t: now,
                            rule: CARBON_PER_TOKEN_RULE.to_string(),
                            severity: Severity::Warning,
                            value: per_token,
                            truth_t: None,
                            detail: format!(
                                "observed {per_token:.4} gCO2e/token over {span:.0}s \
                                 (limit {:.4})",
                                e.cfg.co2e_per_token_g
                            ),
                        },
                    );
                }
            } else if per_token < 0.9 * e.cfg.co2e_per_token_g && e.per_token_asserted {
                e.per_token_asserted = false;
                self.incidents.on_clear(CARBON_PER_TOKEN_RULE, now);
            }
        }
    }

    /// Feeds output-token completions into the carbon per-token window.
    /// No-op unless [`attach_energy`](Self::attach_energy) was called.
    pub fn request_tokens(&mut self, t: f64, tokens: u64) {
        if let Some(e) = self.energy.as_mut() {
            e.token_times.push_back((t, tokens));
            e.tokens_window += tokens;
        }
    }

    /// Feeds one *delayed* observed row-power reading.
    pub fn observe(&mut self, now: f64, watts: f64) {
        let frac = if self.provisioned_watts > 0.0 {
            watts / self.provisioned_watts
        } else {
            0.0
        };
        self.last_observed_t = Some(now);
        self.energy_observe(now, watts);
        for (rule, rt) in self.rules.iter().zip(self.rt.iter_mut()) {
            match (&rule.kind, rt) {
                (
                    RuleKind::Threshold {
                        over,
                        clear,
                        hold_s,
                    },
                    RuleRt::Threshold {
                        asserted,
                        above_since,
                        truth_above,
                        truth_crossed_at,
                    },
                ) => {
                    if frac >= *over {
                        let since = *above_since.get_or_insert(now);
                        if !*asserted && now - since >= *hold_s {
                            *asserted = true;
                            Self::fire(
                                &mut self.alerts,
                                &mut self.incidents,
                                Alert {
                                    t: now,
                                    rule: rule.name.clone(),
                                    severity: rule.severity,
                                    value: frac,
                                    truth_t: *truth_crossed_at,
                                    detail: format!(
                                        "row power at {:.1}% of provisioned (≥{:.0}% for {:.0}s)",
                                        frac * 100.0,
                                        over * 100.0,
                                        now - since
                                    ),
                                },
                            );
                        }
                    } else if frac < *clear {
                        *above_since = None;
                        if *asserted {
                            *asserted = false;
                            self.incidents.on_clear(&rule.name, now);
                        }
                        if !*truth_above {
                            // Both views quiet: the episode is over.
                            *truth_crossed_at = None;
                        }
                    } else {
                        // Hysteresis band: not firing, not clearing;
                        // the hold timer restarts on re-crossing.
                        *above_since = None;
                    }
                }
                (
                    RuleKind::Rate { rise, window_s },
                    RuleRt::Rate {
                        window,
                        asserted,
                        truth_risen,
                        truth_crossed_at,
                        ..
                    },
                ) => {
                    let low = window_min(window, now, frac, *window_s);
                    let delta = frac - low;
                    if delta >= *rise {
                        if !*asserted {
                            *asserted = true;
                            Self::fire(
                                &mut self.alerts,
                                &mut self.incidents,
                                Alert {
                                    t: now,
                                    rule: rule.name.clone(),
                                    severity: rule.severity,
                                    value: delta,
                                    truth_t: *truth_crossed_at,
                                    detail: format!(
                                        "row power rose {:.1} points of provisioned within {:.0}s",
                                        delta * 100.0,
                                        window_s
                                    ),
                                },
                            );
                        }
                    } else if delta < rise * 0.5 {
                        if *asserted {
                            *asserted = false;
                            self.incidents.on_clear(&rule.name, now);
                        }
                        if !*truth_risen {
                            *truth_crossed_at = None;
                        }
                    }
                }
                // A sample arrived: staleness over.
                (RuleKind::Absence { .. }, RuleRt::Absence { asserted }) if *asserted => {
                    *asserted = false;
                    self.incidents.on_clear(&rule.name, now);
                }
                _ => {}
            }
        }
        self.tick(now);
    }

    /// Feeds one telemetry tick on which the delayed read had no data
    /// (start-up or a silent telemetry failure).
    pub fn gap(&mut self, now: f64) {
        let last = self.last_observed_t;
        if let Some(e) = self.energy.as_mut() {
            // A silent telemetry failure: never invent emissions
            // across the hole.
            e.prev = None;
        }
        for (rule, rt) in self.rules.iter().zip(self.rt.iter_mut()) {
            if let (RuleKind::Absence { gap_s }, RuleRt::Absence { asserted }) = (&rule.kind, rt) {
                let gap = now - last.unwrap_or(0.0);
                if gap > *gap_s && !*asserted {
                    *asserted = true;
                    Self::fire(
                        &mut self.alerts,
                        &mut self.incidents,
                        Alert {
                            t: now,
                            rule: rule.name.clone(),
                            severity: rule.severity,
                            value: gap,
                            // Staleness is detected from the absence
                            // itself; the condition began when samples
                            // stopped arriving.
                            truth_t: last,
                            detail: format!("no row telemetry for {gap:.0}s (limit {gap_s:.0}s)"),
                        },
                    );
                }
            }
        }
        self.tick(now);
    }

    /// Feeds one *ground-truth* row-power reading. Shadow bookkeeping
    /// only: records when conditions actually began so alerts can be
    /// annotated with their detection lag. Never fires or clears.
    pub fn truth(&mut self, now: f64, watts: f64) {
        let frac = if self.provisioned_watts > 0.0 {
            watts / self.provisioned_watts
        } else {
            0.0
        };
        for (rule, rt) in self.rules.iter().zip(self.rt.iter_mut()) {
            match (&rule.kind, rt) {
                (
                    RuleKind::Threshold { over, clear, .. },
                    RuleRt::Threshold {
                        asserted,
                        truth_above,
                        truth_crossed_at,
                        ..
                    },
                ) => {
                    if frac >= *over {
                        if !*truth_above {
                            *truth_above = true;
                            truth_crossed_at.get_or_insert(now);
                        }
                    } else if frac < *clear {
                        *truth_above = false;
                        if !*asserted {
                            *truth_crossed_at = None;
                        }
                    }
                }
                (
                    RuleKind::Rate { rise, window_s },
                    RuleRt::Rate {
                        truth_window,
                        truth_risen,
                        truth_crossed_at,
                        asserted,
                        ..
                    },
                ) => {
                    let low = window_min(truth_window, now, frac, *window_s);
                    let delta = frac - low;
                    if delta >= *rise {
                        if !*truth_risen {
                            *truth_risen = true;
                            truth_crossed_at.get_or_insert(now);
                        }
                    } else if delta < rise * 0.5 {
                        *truth_risen = false;
                        if !*asserted {
                            *truth_crossed_at = None;
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Feeds one obs event. `count` rules match on the event's kind tag
    /// (with `brake` split into `brake_on`/`brake_off`); completions
    /// also feed the SLO burn tracker. Ground-truth `power_sample`
    /// events are ignored — power rules run on the delayed feed only.
    pub fn event(&mut self, event: &Event) {
        let t = event.t();
        let tag: &str = match event {
            Event::PowerSample { .. } => return,
            Event::BrakeEngaged { on, .. } => {
                if *on {
                    "brake_on"
                } else {
                    "brake_off"
                }
            }
            other => other.kind(),
        };
        if let Event::RequestCompleted {
            priority,
            latency_s,
            ..
        } = event
        {
            let priority = if *priority == "high" {
                Priority::High
            } else {
                Priority::Low
            };
            self.burn.record(t, priority, *latency_s);
        }
        for &i in &self.count_idx {
            let (rule, rt) = (&self.rules[i], &mut self.rt[i]);
            if let (RuleKind::Count { event, k, window_s }, RuleRt::Count { times, asserted }) =
                (&rule.kind, rt)
            {
                if event != tag {
                    continue;
                }
                times.push_back(t);
                while times.front().is_some_and(|&ft| t - ft > *window_s) {
                    times.pop_front();
                }
                let below_k = (times.len() as u64) < *k;
                if *asserted && below_k {
                    // Expiry alone can drop the window below `k`
                    // between telemetry ticks; clear on the event that
                    // revealed it rather than waiting for the grid.
                    *asserted = false;
                    self.incidents.on_clear(&rule.name, t);
                } else if !below_k && !*asserted {
                    *asserted = true;
                    Self::fire(
                        &mut self.alerts,
                        &mut self.incidents,
                        Alert {
                            t,
                            rule: rule.name.clone(),
                            severity: rule.severity,
                            value: times.len() as f64,
                            // Events carry their own exact timestamps,
                            // so a count condition is detected the
                            // instant it becomes true: zero lag.
                            truth_t: Some(t),
                            detail: format!(
                                "{} x '{}' within {:.0}s (limit {})",
                                times.len(),
                                event,
                                window_s,
                                k
                            ),
                        },
                    );
                }
            }
        }
        // No shared tick here: events are by far the busiest feed, and
        // window expiry / burn levels / resolution timers are already
        // advanced on every 2 s telemetry tick (`observe`/`gap`), which
        // is the engine's evaluation granularity.
    }

    /// Feeds one polca-req lifecycle record into the TTFT/TBT burn
    /// windows. Like [`event`](Self::event), no shared tick: the
    /// telemetry grid drives evaluation.
    pub fn request(&mut self, t: f64, priority: Priority, ttft_s: f64, tbt_s: f64) {
        self.burn.record_req(t, priority, ttft_s, tbt_s);
    }

    /// Shared per-feed housekeeping: expire count windows, re-evaluate
    /// burn levels, advance incident resolution timers.
    fn tick(&mut self, now: f64) {
        self.tick_inner(now, false);
    }

    fn tick_inner(&mut self, now: f64, force_burn: bool) {
        for &i in &self.count_idx {
            let (rule, rt) = (&self.rules[i], &mut self.rt[i]);
            if let (RuleKind::Count { k, window_s, .. }, RuleRt::Count { times, asserted }) =
                (&rule.kind, rt)
            {
                while times.front().is_some_and(|&ft| now - ft > *window_s) {
                    times.pop_front();
                }
                if *asserted && (times.len() as u64) < *k {
                    *asserted = false;
                    self.incidents.on_clear(&rule.name, now);
                }
            }
        }
        if force_burn || now >= self.next_burn_eval_t {
            self.next_burn_eval_t = now + self.burn.config().bucket_s;
            for tr in self.burn.evaluate(now) {
                self.apply_burn_transition(now, tr);
            }
        }
        self.incidents.on_tick(now);
    }

    fn apply_burn_transition(&mut self, now: f64, tr: BurnTransition) {
        let class = match tr.priority {
            Priority::Low => "low",
            Priority::High => "high",
        };
        // Rule names: slo-burn-{class} for end-to-end latency,
        // ttft-burn-{class} / tbt-burn-{class} for the polca-req
        // signals.
        let rule = format!("{}-burn-{class}", tr.signal.tag());
        match tr.to {
            Some(severity) => {
                let cfg = self.burn.config();
                let signal = match tr.signal {
                    BurnSignal::Latency => "latency",
                    BurnSignal::Ttft => "TTFT",
                    BurnSignal::Tbt => "TBT",
                };
                Self::fire(
                    &mut self.alerts,
                    &mut self.incidents,
                    Alert {
                        t: now,
                        rule,
                        severity,
                        value: tr.fast_burn,
                        // Burn is computed from completion events,
                        // which are exact: detected as soon as knowable.
                        truth_t: Some(now),
                        detail: format!(
                            "{class}-priority {signal} burn-rate: {:.1}x over {:.0}s and {:.1}x over {:.0}s",
                            tr.fast_burn, cfg.fast_window_s, tr.slow_burn, cfg.slow_window_s
                        ),
                    },
                );
            }
            None => self.incidents.on_clear(&rule, now),
        }
    }

    /// Final pass at the end of the run.
    pub fn finalize(&mut self, t_end: f64) {
        self.tick_inner(t_end, true);
        self.incidents.finalize(t_end);
    }

    /// All fired alerts, in firing order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// The incident log.
    pub fn incidents(&self) -> &IncidentLog {
        &self.incidents
    }

    /// The burn tracker (for end-of-run summaries).
    pub fn burn(&self) -> &BurnTracker {
        &self.burn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incident::IncidentState;

    fn engine(rules: &str) -> WatchEngine {
        WatchEngine::new(
            1000.0,
            &RuleSet::parse(rules).unwrap(),
            BurnConfig::default(),
            3,
            300.0,
        )
    }

    #[test]
    fn threshold_fires_after_hold_and_clears_with_hysteresis() {
        let mut e = engine("hot threshold over=0.9 clear=0.85 hold=4s severity=critical\n");
        e.observe(0.0, 950.0);
        e.observe(2.0, 950.0);
        assert!(e.alerts().is_empty(), "hold not yet met");
        e.observe(4.0, 950.0);
        assert_eq!(e.alerts().len(), 1);
        assert_eq!(e.alerts()[0].rule, "hot");
        assert_eq!(e.alerts()[0].t, 4.0);

        // Dip into the hysteresis band: no clear, no re-fire.
        e.observe(6.0, 880.0);
        e.observe(8.0, 950.0);
        assert_eq!(e.alerts().len(), 1);

        // Full clear, then a fresh episode fires again.
        e.observe(10.0, 100.0);
        assert_eq!(
            e.incidents().incidents()[0].state,
            IncidentState::MitigateObserved
        );
        e.observe(12.0, 950.0);
        e.observe(16.0, 950.0);
        assert_eq!(e.alerts().len(), 2);
    }

    #[test]
    fn truth_feed_annotates_lag_but_never_fires() {
        let mut e = engine("hot threshold over=0.9 hold=0s\n");
        // Truth crosses at t=10; observed (delayed 2s) crosses at t=12.
        e.truth(10.0, 950.0);
        e.observe(10.0, 500.0);
        assert!(e.alerts().is_empty(), "truth alone must not fire");
        e.truth(12.0, 960.0);
        e.observe(12.0, 950.0);
        assert_eq!(e.alerts().len(), 1);
        assert_eq!(e.alerts()[0].truth_t, Some(10.0));
        let inc = &e.incidents().incidents()[0];
        assert_eq!(inc.detection_lag_s, Some(2.0));
    }

    #[test]
    fn truth_only_episode_leaves_no_incident() {
        let mut e = engine("hot threshold over=0.9 hold=0s\n");
        for i in 0..50 {
            e.truth(i as f64, 990.0);
            e.observe(i as f64, 200.0);
        }
        assert!(e.alerts().is_empty());
        assert!(e.incidents().incidents().is_empty());
    }

    #[test]
    fn rate_rule_detects_a_spike() {
        let mut e = engine("spike rate rise=0.1 window=10s\n");
        e.observe(0.0, 500.0);
        e.observe(2.0, 520.0);
        e.observe(4.0, 700.0);
        assert_eq!(e.alerts().len(), 1);
        assert!((e.alerts()[0].value - 0.2).abs() < 1e-9);
        // Plateau: the old low leaves the window, delta shrinks, clears.
        for i in 0..10 {
            e.observe(6.0 + 2.0 * i as f64, 700.0);
        }
        assert_eq!(e.alerts().len(), 1);
        assert_eq!(
            e.incidents().incidents()[0].state,
            IncidentState::MitigateObserved
        );
    }

    #[test]
    fn absence_rule_detects_staleness_gap() {
        let mut e = engine("stale absence gap=6s severity=critical\n");
        e.observe(0.0, 100.0);
        e.observe(2.0, 100.0);
        e.gap(4.0);
        e.gap(6.0);
        assert!(e.alerts().is_empty(), "gap of 4s is under the limit");
        e.gap(10.0);
        assert_eq!(e.alerts().len(), 1);
        assert_eq!(e.alerts()[0].truth_t, Some(2.0));
        // Telemetry returns: incident mitigates.
        e.observe(12.0, 100.0);
        assert_eq!(
            e.incidents().incidents()[0].state,
            IncidentState::MitigateObserved
        );
    }

    #[test]
    fn count_rule_fires_on_kth_event_with_zero_lag() {
        let mut e = engine("storm count event=brake_on k=2 window=300s\n");
        let brake = |t, on| Event::BrakeEngaged { t, server: 0, on };
        e.event(&brake(10.0, true));
        assert!(e.alerts().is_empty());
        e.event(&brake(11.0, false)); // brake_off does not match
        e.event(&brake(20.0, true));
        assert_eq!(e.alerts().len(), 1);
        assert_eq!(e.alerts()[0].t, 20.0);
        assert_eq!(e.alerts()[0].truth_t, Some(20.0));
        assert_eq!(e.incidents().incidents()[0].detection_lag_s, Some(0.0));
    }

    #[test]
    fn power_sample_events_are_ignored() {
        let mut e = engine("hot threshold over=0.5 hold=0s\n");
        e.event(&Event::PowerSample {
            t: 1.0,
            watts: 990.0,
        });
        assert!(e.alerts().is_empty(), "ground-truth events must not fire");
    }

    #[test]
    fn repeated_alerts_escalate_the_incident() {
        let mut e = engine("hot threshold over=0.9 clear=0.85 hold=0s\n");
        for i in 0..3 {
            let t = 10.0 * i as f64;
            e.observe(t, 950.0);
            e.observe(t + 2.0, 100.0);
            // Regression within the cool-down re-fires the rule.
        }
        let inc = &e.incidents().incidents()[0];
        assert_eq!(e.incidents().incidents().len(), 1);
        assert_eq!(inc.alerts, 3);
        // Each regression escalated; the trailing clear put the
        // incident back into its cool-down.
        assert_eq!(inc.state, IncidentState::MitigateObserved);
        assert!(inc.escalated_t.is_some());
    }

    fn energy_cfg(budget_g_per_h: f64, co2e_per_token_g: f64) -> WatchEnergyConfig {
        let mut cfg = WatchEnergyConfig::new(
            CarbonSignal::Constant(500.0),
            1.25,
            budget_g_per_h,
            co2e_per_token_g,
        );
        cfg.window_s = 60.0;
        cfg
    }

    #[test]
    fn carbon_budget_rule_fires_on_sustained_emissions() {
        let mut e = engine("hot threshold over=0.99 hold=0s\n");
        // 800 W × 1.25 PUE × 500 g/kWh = 500 g/h: over a 400 g/h budget.
        e.attach_energy(energy_cfg(400.0, f64::INFINITY));
        for i in 0..40 {
            e.observe(i as f64 * 2.0, 800.0);
        }
        let alert = e
            .alerts()
            .iter()
            .find(|a| a.rule == CARBON_BUDGET_RULE)
            .expect("carbon-budget-burn alert");
        assert_eq!(alert.severity, Severity::Critical);
        // Fires at the first evaluation past half the 60s window.
        assert_eq!(alert.t, 30.0);
        assert!((alert.value - 500.0).abs() < 1.0, "{}", alert.value);
        assert_eq!(e.alerts().len(), 1, "fires once while asserted");
        // Power collapses: the windowed rate sinks under 90% of budget
        // and the incident observes its mitigation.
        for i in 40..80 {
            e.observe(i as f64 * 2.0, 10.0);
        }
        let inc = e
            .incidents()
            .incidents()
            .iter()
            .find(|i| i.rule == CARBON_BUDGET_RULE)
            .expect("incident");
        assert_eq!(inc.state, IncidentState::MitigateObserved);
    }

    #[test]
    fn carbon_per_token_rule_judges_efficiency() {
        let mut e = engine("hot threshold over=0.99 hold=0s\n");
        // 500 g/h ≈ 0.278 g per 2s tick; one token per tick ⇒ ~0.28
        // g/token, over a 0.1 g/token limit.
        e.attach_energy(energy_cfg(f64::INFINITY, 0.1));
        for i in 0..40 {
            let t = i as f64 * 2.0;
            e.request_tokens(t, 1);
            e.observe(t, 800.0);
        }
        let alert = e
            .alerts()
            .iter()
            .find(|a| a.rule == CARBON_PER_TOKEN_RULE)
            .expect("co2e-per-token-high alert");
        assert_eq!(alert.severity, Severity::Warning);
        assert!(alert.value > 0.1, "{}", alert.value);
        // Throughput surges: the same emissions spread over far more
        // tokens clears the rule.
        for i in 40..80 {
            let t = i as f64 * 2.0;
            e.request_tokens(t, 1000);
            e.observe(t, 800.0);
        }
        let inc = e
            .incidents()
            .incidents()
            .iter()
            .find(|i| i.rule == CARBON_PER_TOKEN_RULE)
            .expect("incident");
        assert_eq!(inc.state, IncidentState::MitigateObserved);
    }

    #[test]
    fn gaps_never_invent_emissions() {
        // The gapped run integrates strictly less energy — the hole is
        // skipped, not bridged — so silent telemetry failures can only
        // delay carbon detection, never inflate it.
        let mut gapped = engine("hot threshold over=0.99 hold=0s\n");
        gapped.attach_energy(energy_cfg(400.0, f64::INFINITY));
        let mut solid = gapped.clone();
        for i in 0..40 {
            let t = i as f64 * 2.0;
            solid.observe(t, 800.0);
            if (10..20).contains(&i) {
                gapped.gap(t);
            } else {
                gapped.observe(t, 800.0);
            }
        }
        let cum = |e: &WatchEngine| e.energy.as_ref().unwrap().co2e_cum;
        assert!(cum(&gapped) < cum(&solid));
    }

    #[test]
    fn no_energy_config_means_no_carbon_rules() {
        let mut e = engine(crate::rules::DEFAULT_RULES);
        e.request_tokens(0.0, 100);
        for i in 0..100 {
            e.observe(i as f64 * 2.0, 900.0);
        }
        assert!(e
            .alerts()
            .iter()
            .all(|a| a.rule != CARBON_BUDGET_RULE && a.rule != CARBON_PER_TOKEN_RULE));
    }

    #[test]
    fn engine_is_deterministic() {
        let run = || {
            let mut e = engine(crate::rules::DEFAULT_RULES);
            for i in 0..500 {
                let t = i as f64 * 2.0;
                let truth = 800.0 + 250.0 * ((i % 60) as f64 / 60.0);
                e.truth(t, truth);
                if i % 97 == 13 {
                    e.gap(t);
                } else if i >= 1 {
                    let j = i - 1;
                    e.observe(t, 800.0 + 250.0 * ((j % 60) as f64 / 60.0));
                }
                if i % 7 == 0 {
                    e.event(&Event::CapApplied {
                        t,
                        server: i % 4,
                        mhz: 1200.0,
                    });
                }
            }
            e.finalize(1000.0);
            (e.alerts().to_vec(), e.incidents().to_jsonl())
        };
        let (alerts_a, jsonl_a) = run();
        let (alerts_b, jsonl_b) = run();
        assert_eq!(alerts_a, alerts_b);
        assert_eq!(jsonl_a, jsonl_b);
        assert!(!alerts_a.is_empty(), "the synthetic feed should alert");
    }
}
