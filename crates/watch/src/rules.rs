//! The declarative alerting rule grammar.
//!
//! A rule set is a plain-text document, one rule per line:
//!
//! ```text
//! # name    kind       key=value ...
//! row-hot   threshold  over=0.95 clear=0.92 hold=30s severity=critical
//! row-warm  threshold  over=0.88 hold=60s
//! spike     rate       rise=0.05 window=10s
//! oob-stale absence    gap=6s severity=critical
//! cap-storm count      event=cap_applied k=8 window=120s
//! brakes    count      event=brake_on k=2 window=300s severity=critical
//! ```
//!
//! * `#` starts a comment; blank lines are ignored.
//! * Durations accept `s`/`m`/`h` suffixes (`30s`, `5m`, `1h`) or bare
//!   seconds.
//! * Power values (`over`, `clear`, `rise`) are *fractions of the row's
//!   provisioned power*, so rules are row-size independent.
//! * `severity` is `warning` (default) or `critical`.
//!
//! Rule kinds:
//!
//! * `threshold` — the delayed row-power fraction stays at or above
//!   `over` for `hold` (default 0 s); clears below `clear` (default
//!   97 % of `over` — hysteresis so the alert does not flap inside the
//!   noise band).
//! * `rate` — the fraction rose by at least `rise` within `window`.
//! * `absence` — no delayed sample for more than `gap` (staleness: §3.3
//!   notes OOB telemetry "may sometimes fail without signaling").
//! * `count` — at least `k` events with tag `event` within `window`.
//!   Tags are the obs event kinds (`cap_applied`, `power_cap_applied`,
//!   `oob_lost`, …) plus `brake_on` / `brake_off` for the two halves of
//!   the `brake` event.

use std::error::Error;
use std::fmt;

/// How urgent an alert (and the incident it opens) is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth a ticket.
    Warning,
    /// Worth a page.
    Critical,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        })
    }
}

/// The condition half of a rule.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleKind {
    /// Delayed row-power fraction ≥ `over` sustained for `hold_s`;
    /// clears below `clear`.
    Threshold {
        /// Assert level as a fraction of provisioned power.
        over: f64,
        /// De-assert level (hysteresis), ≤ `over`.
        clear: f64,
        /// How long the signal must stay at/above `over` before firing.
        hold_s: f64,
    },
    /// Delayed row-power fraction rose by ≥ `rise` within `window_s`.
    Rate {
        /// Minimum rise (fraction of provisioned) to fire on.
        rise: f64,
        /// Look-back window in seconds.
        window_s: f64,
    },
    /// No delayed sample for more than `gap_s` seconds.
    Absence {
        /// Maximum tolerated gap between samples in seconds.
        gap_s: f64,
    },
    /// At least `k` events with tag `event` within `window_s`.
    Count {
        /// Event tag to count (obs event kind, or `brake_on` /
        /// `brake_off`).
        event: String,
        /// Firing threshold.
        k: u64,
        /// Sliding window in seconds.
        window_s: f64,
    },
}

/// One named, severity-tagged alerting rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Unique rule name (the incident correlation key).
    pub name: String,
    /// Alert severity when the rule fires.
    pub severity: Severity,
    /// The condition.
    pub kind: RuleKind,
}

/// A parse failure, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleParseError {
    /// 1-based line number in the rule document.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for RuleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule line {}: {}", self.line, self.message)
    }
}

impl Error for RuleParseError {}

/// An ordered collection of rules.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

/// The built-in rule set the watch plane uses when no rule file is
/// given. Thresholds echo the paper's operating points: POLCA's T2 trip
/// level sits at 89 % of provisioned power and the brake at 100 %, so
/// sustained operation above 95 % is genuinely dangerous, and *any*
/// brake engagement violates Table 6.
pub const DEFAULT_RULES: &str = "\
# polca-watch default rules (fractions of provisioned row power)
row-power-high      threshold over=0.95 clear=0.92 hold=30s severity=critical
row-power-approach  threshold over=0.88 clear=0.85 hold=60s severity=warning
row-power-spike     rate      rise=0.08 window=20s severity=warning
oob-telemetry-stale absence   gap=6s severity=critical
cap-storm           count     event=cap_applied k=8 window=120s severity=warning
brake-storm         count     event=brake_on k=2 window=300s severity=critical
";

impl RuleSet {
    /// The built-in [`DEFAULT_RULES`], parsed.
    pub fn default_rules() -> RuleSet {
        RuleSet::parse(DEFAULT_RULES).expect("built-in rules parse")
    }

    /// Parses a rule document (see the module docs for the grammar).
    pub fn parse(text: &str) -> Result<RuleSet, RuleParseError> {
        let mut rules: Vec<Rule> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |message: String| RuleParseError {
                line: line_no,
                message,
            };
            let mut tokens = line.split_whitespace();
            let name = tokens.next().expect("non-empty line").to_string();
            let kind_word = tokens
                .next()
                .ok_or_else(|| err(format!("rule '{name}' is missing a kind")))?;
            if rules.iter().any(|r| r.name == name) {
                return Err(err(format!("duplicate rule name '{name}'")));
            }
            let mut severity = Severity::Warning;
            let mut args: Vec<(String, String)> = Vec::new();
            for tok in tokens {
                let (key, value) = tok
                    .split_once('=')
                    .ok_or_else(|| err(format!("expected key=value, got '{tok}'")))?;
                if key == "severity" {
                    severity = match value {
                        "warning" => Severity::Warning,
                        "critical" => Severity::Critical,
                        other => {
                            return Err(err(format!(
                                "unknown severity '{other}' (expected warning|critical)"
                            )))
                        }
                    };
                } else {
                    args.push((key.to_string(), value.to_string()));
                }
            }
            let take = |args: &mut Vec<(String, String)>, key: &str| -> Option<String> {
                let pos = args.iter().position(|(k, _)| k == key)?;
                Some(args.remove(pos).1)
            };
            let number = |key: &str, value: &str| -> Result<f64, RuleParseError> {
                value
                    .parse::<f64>()
                    .ok()
                    .filter(|v| v.is_finite())
                    .ok_or_else(|| err(format!("'{key}' is not a number: '{value}'")))
            };
            let duration = |key: &str, value: &str| -> Result<f64, RuleParseError> {
                let (num_part, scale) = match value.as_bytes().last() {
                    Some(b's') => (&value[..value.len() - 1], 1.0),
                    Some(b'm') => (&value[..value.len() - 1], 60.0),
                    Some(b'h') => (&value[..value.len() - 1], 3600.0),
                    _ => (value, 1.0),
                };
                let v = number(key, num_part)?;
                if v < 0.0 {
                    return Err(err(format!("'{key}' must be non-negative")));
                }
                Ok(v * scale)
            };
            let kind = match kind_word {
                "threshold" => {
                    let over_s = take(&mut args, "over")
                        .ok_or_else(|| err("threshold rule needs over=".to_string()))?;
                    let over = number("over", &over_s)?;
                    if over <= 0.0 {
                        return Err(err("'over' must be positive".to_string()));
                    }
                    let clear = match take(&mut args, "clear") {
                        Some(v) => number("clear", &v)?,
                        None => over * 0.97,
                    };
                    if clear > over {
                        return Err(err(format!("clear={clear} must not exceed over={over}")));
                    }
                    let hold_s = match take(&mut args, "hold") {
                        Some(v) => duration("hold", &v)?,
                        None => 0.0,
                    };
                    RuleKind::Threshold {
                        over,
                        clear,
                        hold_s,
                    }
                }
                "rate" => {
                    let rise_s = take(&mut args, "rise")
                        .ok_or_else(|| err("rate rule needs rise=".to_string()))?;
                    let rise = number("rise", &rise_s)?;
                    if rise <= 0.0 {
                        return Err(err("'rise' must be positive".to_string()));
                    }
                    let window_s = duration(
                        "window",
                        &take(&mut args, "window")
                            .ok_or_else(|| err("rate rule needs window=".to_string()))?,
                    )?;
                    if window_s <= 0.0 {
                        return Err(err("'window' must be positive".to_string()));
                    }
                    RuleKind::Rate { rise, window_s }
                }
                "absence" => {
                    let gap_s = duration(
                        "gap",
                        &take(&mut args, "gap")
                            .ok_or_else(|| err("absence rule needs gap=".to_string()))?,
                    )?;
                    if gap_s <= 0.0 {
                        return Err(err("'gap' must be positive".to_string()));
                    }
                    RuleKind::Absence { gap_s }
                }
                "count" => {
                    let event = take(&mut args, "event")
                        .ok_or_else(|| err("count rule needs event=".to_string()))?;
                    let k_s = take(&mut args, "k")
                        .ok_or_else(|| err("count rule needs k=".to_string()))?;
                    let k =
                        k_s.parse::<u64>().ok().filter(|&k| k >= 1).ok_or_else(|| {
                            err(format!("'k' must be a positive integer: '{k_s}'"))
                        })?;
                    let window_s = duration(
                        "window",
                        &take(&mut args, "window")
                            .ok_or_else(|| err("count rule needs window=".to_string()))?,
                    )?;
                    if window_s <= 0.0 {
                        return Err(err("'window' must be positive".to_string()));
                    }
                    RuleKind::Count { event, k, window_s }
                }
                other => {
                    return Err(err(format!(
                        "unknown rule kind '{other}' (expected threshold|rate|absence|count)"
                    )))
                }
            };
            if let Some((key, _)) = args.first() {
                return Err(err(format!("unknown key '{key}' for {kind_word} rule")));
            }
            rules.push(Rule {
                name,
                severity,
                kind,
            });
        }
        Ok(RuleSet { rules })
    }

    /// The rules, in document order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rules_parse() {
        let set = RuleSet::default_rules();
        assert_eq!(set.len(), 6);
        assert_eq!(set.rules()[0].name, "row-power-high");
        assert_eq!(set.rules()[0].severity, Severity::Critical);
        assert_eq!(
            set.rules()[0].kind,
            RuleKind::Threshold {
                over: 0.95,
                clear: 0.92,
                hold_s: 30.0,
            }
        );
        assert_eq!(
            set.rules()[5].kind,
            RuleKind::Count {
                event: "brake_on".to_string(),
                k: 2,
                window_s: 300.0,
            }
        );
    }

    #[test]
    fn durations_accept_suffixes() {
        let set = RuleSet::parse("a threshold over=0.9 hold=5m\nb absence gap=1h\n").unwrap();
        assert_eq!(
            set.rules()[0].kind,
            RuleKind::Threshold {
                over: 0.9,
                clear: 0.9 * 0.97,
                hold_s: 300.0,
            }
        );
        assert_eq!(set.rules()[1].kind, RuleKind::Absence { gap_s: 3600.0 });
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let set =
            RuleSet::parse("# all comments\n\n  \na threshold over=0.5 # trailing\n").unwrap();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = RuleSet::parse("ok threshold over=0.5\nbad nonsense x=1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown rule kind"), "{e}");

        let e = RuleSet::parse("a threshold over=0.5\na threshold over=0.6\n").unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");

        let e = RuleSet::parse("a threshold over=0.5 clear=0.9\n").unwrap_err();
        assert!(e.message.contains("must not exceed"), "{e}");

        let e = RuleSet::parse("a count event=brake_on k=0 window=10s\n").unwrap_err();
        assert!(e.message.contains("positive integer"), "{e}");

        let e = RuleSet::parse("a threshold over=0.5 bogus=1\n").unwrap_err();
        assert!(e.message.contains("unknown key 'bogus'"), "{e}");
    }

    #[test]
    fn severity_parses_and_orders() {
        assert!(Severity::Critical > Severity::Warning);
        assert_eq!(Severity::Critical.to_string(), "critical");
        let e = RuleSet::parse("a threshold over=0.5 severity=meh\n").unwrap_err();
        assert!(e.message.contains("unknown severity"), "{e}");
    }
}
