//! Multi-window SLO burn-rate tracking (Google-SRE style).
//!
//! Each priority class has an availability-style objective: a request
//! is *good* when its end-to-end latency is at or under the class's
//! good-latency bound, and the error budget tolerates a small fraction
//! of bad requests. The *burn rate* over a window is the observed bad
//! fraction divided by the budget — 1.0 means the budget is being
//! consumed exactly at the sustainable pace.
//!
//! Alerting uses the classic two-window conjunction: an alert requires
//! the burn rate to exceed the threshold over **both** a fast window
//! (responsive, 5 m) and a slow window (flap-resistant, 1 h). The
//! tracker buckets completions into coarse time buckets so memory stays
//! bounded on multi-day runs, and every computation is a pure function
//! of (simulation-time, count) pairs — deterministic across runs.

use crate::rules::Severity;
use polca_cluster::Priority;

/// Burn-rate tracking parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BurnConfig {
    /// Fast alerting window in seconds (default 5 m).
    pub fast_window_s: f64,
    /// Slow alerting window in seconds (default 1 h).
    pub slow_window_s: f64,
    /// Error budget: tolerated bad-request fraction (default 1 %).
    pub budget: f64,
    /// Burn multiple (in both windows) that raises a warning.
    pub warning_burn: f64,
    /// Burn multiple (in both windows) that raises a critical alert.
    pub critical_burn: f64,
    /// Bucket width for the streaming window sums, in seconds.
    pub bucket_s: f64,
    /// Minimum completions in the fast window before burn is evaluated
    /// (avoids firing on the first bad request of a quiet run).
    pub min_requests: u64,
    /// Good-latency bound for low-priority requests, in seconds.
    pub low_good_latency_s: f64,
    /// Good-latency bound for high-priority requests, in seconds.
    pub high_good_latency_s: f64,
    /// Good time-to-first-token bound for low-priority requests, in
    /// seconds (polca-req signal).
    pub low_good_ttft_s: f64,
    /// Good time-to-first-token bound for high-priority requests.
    pub high_good_ttft_s: f64,
    /// Good mean time-between-tokens bound for low-priority requests,
    /// in seconds (polca-req signal).
    pub low_good_tbt_s: f64,
    /// Good mean time-between-tokens bound for high-priority requests.
    pub high_good_tbt_s: f64,
}

impl Default for BurnConfig {
    fn default() -> Self {
        BurnConfig {
            fast_window_s: 300.0,
            slow_window_s: 3600.0,
            budget: 0.01,
            warning_burn: 6.0,
            critical_burn: 14.4,
            bucket_s: 10.0,
            min_requests: 20,
            low_good_latency_s: 60.0,
            high_good_latency_s: 30.0,
            low_good_ttft_s: 30.0,
            high_good_ttft_s: 15.0,
            low_good_tbt_s: 0.5,
            high_good_tbt_s: 0.25,
        }
    }
}

impl BurnConfig {
    /// The good-latency bound for `priority`.
    pub fn good_latency_s(&self, priority: Priority) -> f64 {
        match priority {
            Priority::Low => self.low_good_latency_s,
            Priority::High => self.high_good_latency_s,
        }
    }

    /// The good-TTFT bound for `priority`.
    pub fn good_ttft_s(&self, priority: Priority) -> f64 {
        match priority {
            Priority::Low => self.low_good_ttft_s,
            Priority::High => self.high_good_ttft_s,
        }
    }

    /// The good mean-TBT bound for `priority`.
    pub fn good_tbt_s(&self, priority: Priority) -> f64 {
        match priority {
            Priority::Low => self.low_good_tbt_s,
            Priority::High => self.high_good_tbt_s,
        }
    }
}

/// Which SLO signal a burn observation or transition concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BurnSignal {
    /// End-to-end request latency (fed from `RequestCompleted` events).
    Latency,
    /// Time to first token (fed from polca-req request records).
    Ttft,
    /// Mean time between tokens (fed from polca-req request records).
    Tbt,
}

impl BurnSignal {
    /// Stable lowercase tag for rule names.
    pub fn tag(self) -> &'static str {
        match self {
            BurnSignal::Latency => "slo",
            BurnSignal::Ttft => "ttft",
            BurnSignal::Tbt => "tbt",
        }
    }
}

/// A burn-level transition for one class, reported by
/// [`BurnTracker::evaluate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnTransition {
    /// The SLO signal whose level changed.
    pub signal: BurnSignal,
    /// The class whose level changed.
    pub priority: Priority,
    /// The new level (`None` = back under budget).
    pub to: Option<Severity>,
    /// Burn multiple over the fast window at the transition.
    pub fast_burn: f64,
    /// Burn multiple over the slow window at the transition.
    pub slow_burn: f64,
}

/// End-of-run burn accounting for one class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnSummary {
    /// The class.
    pub priority: Priority,
    /// Total completions observed.
    pub total: u64,
    /// Completions over the good-latency bound.
    pub bad: u64,
    /// Highest fast-window burn multiple seen.
    pub peak_fast_burn: f64,
    /// Highest slow-window burn multiple seen.
    pub peak_slow_burn: f64,
}

/// Per-class streaming window state.
#[derive(Debug, Clone)]
struct ClassBurn {
    /// `(bucket_start_s, good, bad)`, oldest first; spans ≤ the slow
    /// window.
    buckets: Vec<(f64, u64, u64)>,
    level: Option<Severity>,
    total: u64,
    bad: u64,
    peak_fast: f64,
    peak_slow: f64,
}

impl ClassBurn {
    fn new() -> Self {
        ClassBurn {
            buckets: Vec::new(),
            level: None,
            total: 0,
            bad: 0,
            peak_fast: 0.0,
            peak_slow: 0.0,
        }
    }
}

/// Both priority classes of one SLO signal.
#[derive(Debug, Clone)]
struct SignalBurn {
    low: ClassBurn,
    high: ClassBurn,
}

impl SignalBurn {
    fn new() -> Self {
        SignalBurn {
            low: ClassBurn::new(),
            high: ClassBurn::new(),
        }
    }

    fn class_mut(&mut self, priority: Priority) -> &mut ClassBurn {
        match priority {
            Priority::Low => &mut self.low,
            Priority::High => &mut self.high,
        }
    }
}

/// Streaming multi-window burn-rate tracker over both priority classes
/// and all three SLO signals (end-to-end latency, plus TTFT and TBT
/// when polca-req records flow in).
#[derive(Debug, Clone)]
pub struct BurnTracker {
    cfg: BurnConfig,
    latency: SignalBurn,
    ttft: SignalBurn,
    tbt: SignalBurn,
}

impl BurnTracker {
    /// A tracker with the given parameters.
    pub fn new(cfg: BurnConfig) -> Self {
        BurnTracker {
            cfg,
            latency: SignalBurn::new(),
            ttft: SignalBurn::new(),
            tbt: SignalBurn::new(),
        }
    }

    fn signal_mut(&mut self, signal: BurnSignal) -> &mut SignalBurn {
        match signal {
            BurnSignal::Latency => &mut self.latency,
            BurnSignal::Ttft => &mut self.ttft,
            BurnSignal::Tbt => &mut self.tbt,
        }
    }

    fn observe(&mut self, signal: BurnSignal, t: f64, priority: Priority, good: bool) {
        let bucket = (t / self.cfg.bucket_s).floor() * self.cfg.bucket_s;
        let class = self.signal_mut(signal).class_mut(priority);
        class.total += 1;
        if !good {
            class.bad += 1;
        }
        match class.buckets.last_mut() {
            Some(last) if last.0 >= bucket => {
                if good {
                    last.1 += 1;
                } else {
                    last.2 += 1;
                }
            }
            _ => {
                class
                    .buckets
                    .push((bucket, u64::from(good), u64::from(!good)));
            }
        }
    }

    /// Records one completion (the end-to-end latency signal).
    pub fn record(&mut self, t: f64, priority: Priority, latency_s: f64) {
        let good = latency_s <= self.cfg.good_latency_s(priority);
        self.observe(BurnSignal::Latency, t, priority, good);
    }

    /// Records one polca-req lifecycle record: TTFT and mean TBT each
    /// feed their own burn windows.
    pub fn record_req(&mut self, t: f64, priority: Priority, ttft_s: f64, tbt_s: f64) {
        let ttft_good = ttft_s <= self.cfg.good_ttft_s(priority);
        self.observe(BurnSignal::Ttft, t, priority, ttft_good);
        let tbt_good = tbt_s <= self.cfg.good_tbt_s(priority);
        self.observe(BurnSignal::Tbt, t, priority, tbt_good);
    }

    /// Burn multiple over `[now - window, now]` for a class, plus the
    /// fast-window completion count.
    fn burn_over(cfg: &BurnConfig, class: &ClassBurn, now: f64, window_s: f64) -> (f64, u64) {
        let from = now - window_s;
        let mut good = 0u64;
        let mut bad = 0u64;
        for &(start, g, b) in class.buckets.iter().rev() {
            if start + cfg.bucket_s <= from {
                break;
            }
            good += g;
            bad += b;
        }
        let total = good + bad;
        if total == 0 {
            return (0.0, 0);
        }
        let bad_fraction = bad as f64 / total as f64;
        (bad_fraction / cfg.budget, total)
    }

    /// Re-evaluates every signal and class at `now`, pruning expired
    /// buckets, and returns any level transitions (latency first, then
    /// TTFT, then TBT; high priority before low within each).
    pub fn evaluate(&mut self, now: f64) -> Vec<BurnTransition> {
        let mut out = Vec::new();
        for signal in [BurnSignal::Latency, BurnSignal::Ttft, BurnSignal::Tbt] {
            for priority in [Priority::High, Priority::Low] {
                let cfg = self.cfg.clone();
                let class = self.signal_mut(signal).class_mut(priority);
                let horizon = now - cfg.slow_window_s - cfg.bucket_s;
                class.buckets.retain(|&(start, _, _)| start > horizon);
                let (fast_burn, fast_n) = Self::burn_over(&cfg, class, now, cfg.fast_window_s);
                let (slow_burn, _) = Self::burn_over(&cfg, class, now, cfg.slow_window_s);
                class.peak_fast = class.peak_fast.max(fast_burn);
                class.peak_slow = class.peak_slow.max(slow_burn);
                let level = if fast_n < cfg.min_requests {
                    None
                } else if fast_burn >= cfg.critical_burn && slow_burn >= cfg.critical_burn {
                    Some(Severity::Critical)
                } else if fast_burn >= cfg.warning_burn && slow_burn >= cfg.warning_burn {
                    Some(Severity::Warning)
                } else {
                    None
                };
                // Report rises and full recoveries; a critical-to-warning
                // decay is not a new alert (the open incident covers it).
                let changed = match (class.level, level) {
                    (None, Some(_)) => true,
                    (Some(a), Some(b)) => b > a,
                    (Some(_), None) => true,
                    (None, None) => false,
                };
                if changed {
                    class.level = level;
                    out.push(BurnTransition {
                        signal,
                        priority,
                        to: level,
                        fast_burn,
                        slow_burn,
                    });
                } else if level.is_some() {
                    // Remember decay without alerting on it.
                    class.level = class.level.max(level);
                }
            }
        }
        out
    }

    /// End-of-run per-class accounting of the end-to-end latency
    /// signal, high priority first.
    pub fn summaries(&self) -> [BurnSummary; 2] {
        let mk = |priority, class: &ClassBurn| BurnSummary {
            priority,
            total: class.total,
            bad: class.bad,
            peak_fast_burn: class.peak_fast,
            peak_slow_burn: class.peak_slow,
        };
        [
            mk(Priority::High, &self.latency.high),
            mk(Priority::Low, &self.latency.low),
        ]
    }

    /// The tracker's configuration.
    pub fn config(&self) -> &BurnConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> BurnTracker {
        BurnTracker::new(BurnConfig {
            min_requests: 4,
            ..BurnConfig::default()
        })
    }

    #[test]
    fn healthy_traffic_never_alerts() {
        let mut b = tracker();
        for i in 0..500 {
            b.record(i as f64, Priority::Low, 1.0);
            b.record(i as f64, Priority::High, 0.5);
        }
        assert!(b.evaluate(500.0).is_empty());
        let [high, low] = b.summaries();
        assert_eq!(high.bad, 0);
        assert_eq!(low.total, 500);
        assert_eq!(low.peak_fast_burn, 0.0);
    }

    #[test]
    fn sustained_badness_raises_then_recovers() {
        let mut b = tracker();
        // All-bad low-priority traffic: burn = 1/budget = 100x.
        for i in 0..100 {
            b.record(i as f64, Priority::Low, 1000.0);
        }
        let ts = b.evaluate(100.0);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].signal, BurnSignal::Latency);
        assert_eq!(ts[0].priority, Priority::Low);
        assert_eq!(ts[0].to, Some(Severity::Critical));
        assert!(ts[0].fast_burn > 14.4);
        // Quiet period long enough for both windows to drain.
        let ts = b.evaluate(100.0 + 3700.0);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].to, None);
    }

    #[test]
    fn both_windows_must_agree() {
        let mut b = tracker();
        // One hour of good traffic, then a 1-minute burst of bad: the
        // fast window sees a high burn but the slow window dilutes it
        // below critical... with an hour at ~2 req/s, slow-window burn
        // of a 60 s bad burst is 120/7320/0.01 ≈ 1.6 — under warning.
        for i in 0..7200 {
            b.record(i as f64 * 0.5, Priority::High, 0.5);
        }
        for i in 0..120 {
            b.record(3600.0 + i as f64 * 0.5, Priority::High, 500.0);
        }
        let ts = b.evaluate(3660.0);
        assert!(
            ts.is_empty(),
            "slow window should veto the fast spike: {ts:?}"
        );
    }

    #[test]
    fn ttft_and_tbt_burn_independently_of_latency() {
        let mut b = tracker();
        // Fast end-to-end latency but terrible TTFT: only the TTFT
        // signal should fire.
        for i in 0..100 {
            let t = i as f64;
            b.record(t, Priority::High, 1.0);
            b.record_req(t, Priority::High, 120.0, 0.05);
        }
        let ts = b.evaluate(100.0);
        assert_eq!(ts.len(), 1, "{ts:?}");
        assert_eq!(ts[0].signal, BurnSignal::Ttft);
        assert_eq!(ts[0].to, Some(Severity::Critical));
        // Latency summaries are untouched by req records.
        let [high, _] = b.summaries();
        assert_eq!(high.bad, 0);

        // Now a TBT regression (brake-style slowdown) on the low class.
        let mut b = tracker();
        for i in 0..100 {
            b.record_req(i as f64, Priority::Low, 1.0, 2.0);
        }
        let ts = b.evaluate(100.0);
        assert_eq!(ts.len(), 1, "{ts:?}");
        assert_eq!(ts[0].signal, BurnSignal::Tbt);
        assert_eq!(ts[0].priority, Priority::Low);
    }

    #[test]
    fn min_requests_suppresses_sparse_noise() {
        let mut b = tracker();
        b.record(1.0, Priority::Low, 1000.0);
        b.record(2.0, Priority::Low, 1000.0);
        assert!(b.evaluate(10.0).is_empty());
    }

    #[test]
    fn evaluation_is_deterministic() {
        let run = || {
            let mut b = tracker();
            let mut log = Vec::new();
            for i in 0..2000 {
                let t = i as f64 * 1.7;
                let lat = if i % 3 == 0 { 900.0 } else { 1.0 };
                b.record(t, Priority::Low, lat);
                if i % 13 == 0 {
                    log.extend(b.evaluate(t));
                }
            }
            (log, b.summaries())
        };
        let (log_a, sum_a) = run();
        let (log_b, sum_b) = run();
        assert_eq!(log_a, log_b);
        assert_eq!(sum_a, sum_b);
        assert!(!log_a.is_empty());
    }
}
