//! Markdown postmortem rendering.
//!
//! The watch plane's `report.md` is a deterministic, human-readable
//! digest of a run: alert/incident counts, per-class SLO burn
//! accounting, and one postmortem section per incident with its
//! timeline and detection-lag annotation.

use std::fmt::Write as _;

use polca_cluster::Priority;

use crate::burn::BurnSummary;
use crate::engine::Alert;
use crate::incident::{Incident, IncidentState};
use crate::rules::Severity;

fn fmt_t(t: f64) -> String {
    format!("t={t:.1}s")
}

fn class_name(priority: Priority) -> &'static str {
    match priority {
        Priority::Low => "low",
        Priority::High => "high",
    }
}

/// Renders the full watch report.
pub fn render(
    incidents: &[Incident],
    alerts: &[Alert],
    burn: &[BurnSummary],
    t_end: f64,
) -> String {
    let mut s = String::with_capacity(2048);
    let _ = writeln!(s, "# Watch report");
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "Run covered {:.0} s of simulated time. The watch plane saw only \
         the delayed out-of-band telemetry feed; ground-truth times below \
         are annotations added for detection-lag accounting.",
        t_end
    );
    let _ = writeln!(s);

    let crit = |sev: Severity| alerts.iter().filter(|a| a.severity == sev).count();
    let _ = writeln!(s, "## Summary");
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "- alerts: {} ({} critical, {} warning)",
        alerts.len(),
        crit(Severity::Critical),
        crit(Severity::Warning)
    );
    let open = incidents
        .iter()
        .filter(|i| i.state != IncidentState::Resolved)
        .count();
    let _ = writeln!(
        s,
        "- incidents: {} ({} unresolved at end of run)",
        incidents.len(),
        open
    );
    let lags: Vec<f64> = incidents.iter().filter_map(|i| i.detection_lag_s).collect();
    if !lags.is_empty() {
        let max = lags.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let mean = lags.iter().sum::<f64>() / lags.len() as f64;
        let _ = writeln!(
            s,
            "- detection lag: mean {mean:.1} s, max {max:.1} s across {} incident(s) \
             with known ground truth",
            lags.len()
        );
    }
    let _ = writeln!(s);

    let _ = writeln!(s, "## SLO burn");
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "| class | requests | over-latency | peak burn (5m) | peak burn (1h) |"
    );
    let _ = writeln!(
        s,
        "|-------|----------|--------------|----------------|----------------|"
    );
    for b in burn {
        let _ = writeln!(
            s,
            "| {} | {} | {} | {:.1}x | {:.1}x |",
            class_name(b.priority),
            b.total,
            b.bad,
            b.peak_fast_burn,
            b.peak_slow_burn
        );
    }
    let _ = writeln!(s);

    if incidents.is_empty() {
        let _ = writeln!(s, "## Incidents");
        let _ = writeln!(s);
        let _ = writeln!(s, "No incidents: no rule fired during the run.");
        return s;
    }

    for inc in incidents {
        let _ = writeln!(
            s,
            "## Incident #{}: {} ({}, {})",
            inc.id,
            inc.rule,
            inc.severity,
            inc.state.tag()
        );
        let _ = writeln!(s);
        let _ = writeln!(s, "{}", inc.detail);
        let _ = writeln!(s);
        let _ = writeln!(s, "### Timeline");
        let _ = writeln!(s);
        if let Some(tt) = inc.truth_t {
            let _ = writeln!(s, "- {} — condition first held (ground truth)", fmt_t(tt));
        }
        match inc.detection_lag_s {
            Some(lag) => {
                let _ = writeln!(
                    s,
                    "- {} — alert fired (detection lag {:.1} s behind ground truth)",
                    fmt_t(inc.opened_t),
                    lag
                );
            }
            None => {
                let _ = writeln!(
                    s,
                    "- {} — alert fired (ground-truth onset unknown)",
                    fmt_t(inc.opened_t)
                );
            }
        }
        if let Some(et) = inc.escalated_t {
            let _ = writeln!(s, "- {} — escalated", fmt_t(et));
        }
        if let Some(mt) = inc.mitigated_t {
            let _ = writeln!(s, "- {} — mitigation observed (rule cleared)", fmt_t(mt));
        }
        match inc.resolved_t {
            Some(rt) => {
                let _ = writeln!(s, "- {} — resolved", fmt_t(rt));
            }
            None => {
                let _ = writeln!(s, "- unresolved at end of run ({})", fmt_t(t_end));
            }
        }
        let _ = writeln!(s);
        let _ = writeln!(
            s,
            "{} correlated alert(s); peak value {:.3}.",
            inc.alerts, inc.peak_value
        );
        let _ = writeln!(s);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn incident() -> Incident {
        Incident {
            id: 0,
            rule: "row-power-high".to_string(),
            severity: Severity::Critical,
            state: IncidentState::Resolved,
            opened_t: 102.0,
            truth_t: Some(100.0),
            detection_lag_s: Some(2.0),
            escalated_t: Some(110.0),
            mitigated_t: Some(130.0),
            resolved_t: Some(430.0),
            alerts: 4,
            peak_value: 0.97,
            detail: "row power at 97.0% of provisioned".to_string(),
        }
    }

    fn summaries() -> [BurnSummary; 2] {
        [
            BurnSummary {
                priority: Priority::High,
                total: 100,
                bad: 0,
                peak_fast_burn: 0.0,
                peak_slow_burn: 0.0,
            },
            BurnSummary {
                priority: Priority::Low,
                total: 50,
                bad: 5,
                peak_fast_burn: 12.0,
                peak_slow_burn: 4.0,
            },
        ]
    }

    #[test]
    fn report_includes_lag_and_timeline() {
        let alerts = vec![Alert {
            t: 102.0,
            rule: "row-power-high".to_string(),
            severity: Severity::Critical,
            value: 0.97,
            truth_t: Some(100.0),
            detail: "d".to_string(),
        }];
        let md = render(&[incident()], &alerts, &summaries(), 1000.0);
        assert!(md.contains("# Watch report"));
        assert!(md.contains("detection lag 2.0 s behind ground truth"));
        assert!(md.contains("t=100.0s — condition first held (ground truth)"));
        assert!(md.contains("t=430.0s — resolved"));
        assert!(md.contains("| low | 50 | 5 | 12.0x | 4.0x |"));
        assert!(md.contains("alerts: 1 (1 critical, 0 warning)"));
    }

    #[test]
    fn empty_run_reports_no_incidents() {
        let md = render(&[], &[], &summaries(), 100.0);
        assert!(md.contains("No incidents"));
        assert!(md.contains("incidents: 0 (0 unresolved at end of run)"));
    }

    #[test]
    fn unresolved_incident_says_so() {
        let mut inc = incident();
        inc.state = IncidentState::Open;
        inc.resolved_t = None;
        let md = render(&[inc], &[], &summaries(), 555.0);
        assert!(md.contains("unresolved at end of run (t=555.0s)"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = render(&[incident()], &[], &summaries(), 1000.0);
        let b = render(&[incident()], &[], &summaries(), 1000.0);
        assert_eq!(a, b);
    }
}
