//! polca-watch: an online alerting, SLO-burn, and incident plane driven
//! by delayed out-of-band telemetry.
//!
//! The paper's control loop runs on telemetry that is *late* (2 s
//! propagation), *slow* (2 s interval), and *unreliable* (silent
//! failures). Any real deployment would run an alerting plane on that
//! same degraded feed — and its detection lag is itself a power-safety
//! characteristic worth measuring. This crate provides that plane for
//! the simulator:
//!
//! * [`rules`] — a declarative rule grammar (threshold-with-hysteresis,
//!   rate-of-change, absence/staleness, event-count).
//! * [`burn`] — multi-window SLO burn-rate tracking per priority class.
//! * [`engine`] — the streaming evaluator over the delayed feeds.
//! * [`incident`] — alert correlation and the incident lifecycle
//!   (open → escalated → mitigate-observed → resolved).
//! * [`report`] — Markdown postmortems.
//!
//! The central honesty contract: the watch plane subscribes to exactly
//! what the in-simulation controller can see. Ground truth flows in on
//! a separate feed used *only* to timestamp when conditions actually
//! began, so every incident reports how long the delayed telemetry hid
//! it (`detection_lag_s`). And watching is purely passive — attaching a
//! [`WatchPlane`] must leave the simulation's event log and policy
//! decisions bit-identical.
//!
//! ```
//! use polca_watch::{WatchConfig, WatchPlane};
//!
//! let plane = WatchPlane::new(WatchConfig::new(1000.0));
//! // ... wire plane.subscriber() into SimConfig::oob_taps and
//! // plane.event_tap() into the obs Recorder, run the sim ...
//! let artifacts = plane.finalize(polca_sim::SimTime::from_secs(3600.0));
//! assert!(artifacts.incidents().is_empty());
//! ```

#![deny(missing_docs)]

pub mod burn;
pub mod engine;
pub mod incident;
pub mod report;
pub mod rules;

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::{fs, io};

use polca::SloTargets;
use polca_cluster::Priority;
use polca_obs::{Annotation, Event, EventTap, Recorder, ReqRecord};
use polca_sim::SimTime;
use polca_telemetry::{RowPowerSubscriber, RowPowerTaps};

pub use burn::{BurnConfig, BurnSignal, BurnSummary};
pub use engine::{
    Alert, WatchEnergyConfig, WatchEngine, CARBON_BUDGET_RULE, CARBON_PER_TOKEN_RULE,
};
pub use incident::{Incident, IncidentState};
pub use rules::{Rule, RuleKind, RuleParseError, RuleSet, Severity};

/// Everything the watch plane needs to know up front.
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// Provisioned row power in watts (power rules use fractions of
    /// this, so rule files are row-size independent).
    pub provisioned_watts: f64,
    /// The alerting rules.
    pub rules: RuleSet,
    /// The SLO targets the run will be judged against (kept alongside
    /// the burn config for report context).
    pub slo: SloTargets,
    /// Burn-rate tracking parameters.
    pub burn: BurnConfig,
    /// Correlated alerts before an open incident escalates.
    pub escalate_after_alerts: u64,
    /// Quiet seconds after mitigation before an incident resolves.
    pub resolve_after_s: f64,
    /// Built-in carbon rules (budget burn rate, gCO2e/token), enabled
    /// only when a grid signal and budgets are supplied. They are
    /// constructed programmatically rather than in the default rule
    /// text because they carry a carbon-intensity signal no rule
    /// grammar line can express.
    pub energy: Option<WatchEnergyConfig>,
}

impl WatchConfig {
    /// The default watch configuration for a row provisioned at
    /// `provisioned_watts`: built-in rules, paper SLOs, SRE-style burn
    /// windows.
    pub fn new(provisioned_watts: f64) -> Self {
        WatchConfig {
            provisioned_watts,
            rules: RuleSet::default_rules(),
            slo: SloTargets::default(),
            burn: BurnConfig::default(),
            escalate_after_alerts: 3,
            resolve_after_s: 300.0,
            energy: None,
        }
    }

    /// Enables the built-in carbon rules.
    pub fn with_energy(mut self, energy: WatchEnergyConfig) -> Self {
        self.energy = Some(energy);
        self
    }
}

/// Shared engine cell implementing both feed interfaces.
#[derive(Debug)]
struct WatchShared {
    engine: Mutex<WatchEngine>,
}

impl RowPowerSubscriber for WatchShared {
    fn on_observed(&self, now: SimTime, watts: f64) {
        self.engine.lock().unwrap().observe(now.as_secs(), watts);
    }

    fn on_gap(&self, now: SimTime) {
        self.engine.lock().unwrap().gap(now.as_secs());
    }

    fn on_truth(&self, now: SimTime, watts: f64) {
        self.engine.lock().unwrap().truth(now.as_secs(), watts);
    }

    fn on_tick(&self, now: SimTime, truth_watts: f64, observed: Option<f64>) {
        // One lock per telemetry tick instead of two: truth first (so
        // detection-lag shadows are current), then the delayed view.
        let mut engine = self.engine.lock().unwrap();
        let t = now.as_secs();
        engine.truth(t, truth_watts);
        match observed {
            Some(watts) => engine.observe(t, watts),
            None => engine.gap(t),
        }
    }
}

impl EventTap for WatchShared {
    fn on_event(&self, event: &Event) {
        // Ground-truth power samples are by far the most frequent event
        // and the engine ignores them by contract — skip them before
        // paying for the engine lock.
        if matches!(event, Event::PowerSample { .. }) {
            return;
        }
        self.engine.lock().unwrap().event(event);
    }

    fn on_request(&self, record: &ReqRecord) {
        // polca-req records stream in regardless of the requests.jsonl
        // sampling rate, so the TTFT/TBT burn windows see the full
        // population.
        let priority = if record.priority == "high" {
            Priority::High
        } else {
            Priority::Low
        };
        let mut engine = self.engine.lock().unwrap();
        engine.request(
            record.completed_s,
            priority,
            record.ttft_s,
            record.tbt_mean_s,
        );
        engine.request_tokens(record.completed_s, u64::from(record.output_tokens));
    }
}

/// The attachable watch plane: a [`WatchEngine`] behind the telemetry
/// fan-out and obs event-tap interfaces.
///
/// Cloning is cheap and all clones share the same engine.
#[derive(Debug, Clone)]
pub struct WatchPlane {
    shared: Arc<WatchShared>,
}

impl WatchPlane {
    /// A fresh plane with no observations yet.
    pub fn new(config: WatchConfig) -> Self {
        let mut engine = WatchEngine::new(
            config.provisioned_watts,
            &config.rules,
            config.burn,
            config.escalate_after_alerts,
            config.resolve_after_s,
        );
        if let Some(energy) = config.energy {
            engine.attach_energy(energy);
        }
        WatchPlane {
            shared: Arc::new(WatchShared {
                engine: Mutex::new(engine),
            }),
        }
    }

    /// The plane as a row-power subscriber, for
    /// `SimConfig::oob_taps.subscribe(..)`.
    pub fn subscriber(&self) -> Arc<dyn RowPowerSubscriber> {
        self.shared.clone()
    }

    /// The plane as an obs event tap, for `Recorder::set_tap(..)`.
    pub fn event_tap(&self) -> Arc<dyn EventTap> {
        self.shared.clone()
    }

    /// Convenience wiring: subscribes to the taps and installs the
    /// event tap on the recorder.
    pub fn attach(&self, taps: &mut RowPowerTaps, recorder: &Recorder) {
        taps.subscribe(self.subscriber());
        recorder.set_tap(self.event_tap());
    }

    /// Closes out the run at `t_end` and snapshots every artifact.
    pub fn finalize(&self, t_end: SimTime) -> WatchArtifacts {
        let mut engine = self.shared.engine.lock().unwrap();
        let t_end = t_end.as_secs();
        engine.finalize(t_end);
        WatchArtifacts {
            incidents: engine.incidents().incidents().to_vec(),
            alerts: engine.alerts().to_vec(),
            burn: engine.burn().summaries(),
            t_end,
        }
    }
}

/// A finished run's watch output.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchArtifacts {
    incidents: Vec<Incident>,
    alerts: Vec<Alert>,
    burn: [BurnSummary; 2],
    t_end: f64,
}

impl WatchArtifacts {
    /// All incidents, in opening order.
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// All fired alerts, in firing order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Per-class burn summaries, high priority first.
    pub fn burn_summaries(&self) -> &[BurnSummary; 2] {
        &self.burn
    }

    /// `incidents.jsonl`: one JSON object per incident.
    pub fn incidents_jsonl(&self) -> String {
        let mut s = String::new();
        for inc in &self.incidents {
            s.push_str(&inc.to_json());
            s.push('\n');
        }
        s
    }

    /// `report.md`: the Markdown postmortem digest.
    pub fn report_md(&self) -> String {
        report::render(&self.incidents, &self.alerts, &self.burn, self.t_end)
    }

    /// Chrome-trace instant annotations: one per alert, plus one per
    /// incident lifecycle transition, for merging onto the cluster
    /// track of the obs `trace.json`.
    pub fn annotations(&self) -> Vec<Annotation> {
        let mut out = Vec::new();
        for a in &self.alerts {
            out.push(Annotation {
                t: a.t,
                name: format!("alert:{}", a.rule),
                detail: a.detail.clone(),
            });
        }
        for inc in &self.incidents {
            let mut push = |t: Option<f64>, phase: &str| {
                if let Some(t) = t {
                    out.push(Annotation {
                        t,
                        name: format!("incident#{}:{phase}", inc.id),
                        detail: inc.rule.clone(),
                    });
                }
            };
            push(Some(inc.opened_t), "open");
            push(inc.escalated_t, "escalated");
            push(inc.mitigated_t, "mitigate_observed");
            push(inc.resolved_t, "resolved");
        }
        out.sort_by(|a, b| a.t.total_cmp(&b.t).then_with(|| a.name.cmp(&b.name)));
        out
    }

    /// Writes `incidents.jsonl` and `report.md` into `dir`, creating it
    /// if needed, and returns the written paths.
    pub fn write_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        for (name, body) in [
            ("incidents.jsonl", self.incidents_jsonl()),
            ("report.md", self.report_md()),
        ] {
            let path = dir.join(name);
            fs::write(&path, body)?;
            written.push(path);
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_routes_all_three_feeds_to_the_engine() {
        let plane = WatchPlane::new(WatchConfig::new(1000.0));
        let sub = plane.subscriber();
        let tap = plane.event_tap();
        // Truth crosses the 95% line at t=100; the delayed view crosses
        // at t=102. Default row-power-high has hold=30s.
        for i in 0..120 {
            let t = SimTime::from_secs(i as f64 * 2.0);
            let watts = if i >= 50 { 980.0 } else { 500.0 };
            sub.on_truth(t, watts);
            let delayed = if i >= 51 { 980.0 } else { 500.0 };
            sub.on_observed(t, delayed);
        }
        tap.on_event(&Event::CapApplied {
            t: 150.0,
            server: 0,
            mhz: 1200.0,
        });
        let artifacts = plane.finalize(SimTime::from_secs(240.0));
        // The step also trips the spike-rate and approach rules; pick
        // out the critical threshold incident.
        let inc = artifacts
            .incidents()
            .iter()
            .find(|i| i.rule == "row-power-high")
            .expect("row-power-high incident");
        // Truth crossed at t=100; the delayed view crossed at t=102 and
        // had to hold for 30 s, so the alert fired at t=132 — a 32 s
        // detection lag, 2 s of which is pure telemetry delay.
        assert_eq!(inc.truth_t, Some(100.0));
        assert_eq!(inc.detection_lag_s, Some(32.0));
    }

    #[test]
    fn quiet_run_produces_empty_artifacts() {
        let plane = WatchPlane::new(WatchConfig::new(1000.0));
        let sub = plane.subscriber();
        for i in 0..10 {
            let t = SimTime::from_secs(i as f64 * 2.0);
            sub.on_truth(t, 300.0);
            sub.on_observed(t, 300.0);
        }
        let artifacts = plane.finalize(SimTime::from_secs(20.0));
        assert!(artifacts.incidents().is_empty());
        assert!(artifacts.alerts().is_empty());
        assert_eq!(artifacts.incidents_jsonl(), "");
        assert!(artifacts.report_md().contains("No incidents"));
        assert!(artifacts.annotations().is_empty());
    }

    #[test]
    fn artifacts_write_and_are_deterministic() {
        let mk = || {
            let plane = WatchPlane::new(WatchConfig::new(1000.0));
            let sub = plane.subscriber();
            for i in 0..60 {
                let t = SimTime::from_secs(i as f64 * 2.0);
                let watts = if (20..40).contains(&i) { 990.0 } else { 400.0 };
                sub.on_truth(t, watts);
                sub.on_observed(t, if (21..41).contains(&i) { 990.0 } else { 400.0 });
            }
            plane.finalize(SimTime::from_secs(120.0))
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b);
        assert_eq!(a.incidents_jsonl(), b.incidents_jsonl());
        assert_eq!(a.report_md(), b.report_md());

        let dir = std::env::temp_dir().join(format!(
            "polca-watch-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let files = a.write_dir(&dir).unwrap();
        assert_eq!(files.len(), 2);
        assert!(dir.join("incidents.jsonl").exists());
        assert!(dir.join("report.md").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn annotations_are_time_ordered() {
        let plane = WatchPlane::new(WatchConfig::new(1000.0));
        let tap = plane.event_tap();
        for i in 0..3 {
            tap.on_event(&Event::BrakeEngaged {
                t: 10.0 + i as f64,
                server: 0,
                on: true,
            });
        }
        let artifacts = plane.finalize(SimTime::from_secs(100.0));
        let ann = artifacts.annotations();
        assert!(!ann.is_empty());
        assert!(ann.windows(2).all(|w| w[0].t <= w[1].t));
        assert!(ann.iter().any(|a| a.name == "alert:brake-storm"));
        assert!(ann.iter().any(|a| a.name == "incident#0:open"));
    }
}
