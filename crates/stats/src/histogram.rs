//! Fixed-bin histograms and empirical CDFs.
//!
//! POLCA selects its capping thresholds "by analyzing historical power
//! usage traces" (§6.3): the threshold trainer in `polca::policy` builds a
//! power histogram over the training week and reads quantiles off its CDF.

/// A histogram over a fixed `[lo, hi)` range with equal-width bins.
///
/// Out-of-range observations are counted in saturating edge bins so that
/// totals (and therefore CDF quantiles) remain exact.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram spanning `[lo, hi)` with `bins` equal bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    ///
    /// # Examples
    ///
    /// ```
    /// use polca_stats::histogram::Histogram;
    ///
    /// let mut h = Histogram::new(0.0, 1.0, 10);
    /// h.record(0.05);
    /// h.record(0.95);
    /// assert_eq!(h.total(), 2);
    /// ```
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "invalid histogram range");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            total: 0,
        }
    }

    /// Reconstructs a histogram from previously captured bin counts, e.g.
    /// after a caller has merged or rescaled bins externally.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is empty or `lo >= hi`.
    pub fn from_counts(lo: f64, hi: f64, counts: Vec<u64>) -> Self {
        assert!(!counts.is_empty(), "histogram needs at least one bin");
        assert!(lo < hi, "invalid histogram range");
        let total = counts.iter().sum();
        Histogram {
            lo,
            hi,
            bins: counts,
            total,
        }
    }

    /// Records one observation. Values below `lo` land in the first bin,
    /// values at or above `hi` in the last bin.
    pub fn record(&mut self, value: f64) {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let idx = ((value - self.lo) / width).floor();
        let idx = (idx.max(0.0) as usize).min(self.bins.len() - 1);
        self.bins[idx] += 1;
        self.total += 1;
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// The lower edge of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_lo(&self, i: usize) -> f64 {
        assert!(i < self.bins.len(), "bin index out of bounds");
        self.lo + (self.hi - self.lo) * i as f64 / self.bins.len() as f64
    }

    /// Returns the smallest value `v` such that at least `fraction`
    /// (`0.0..=1.0`) of observations are `<= v`, estimated from bin upper
    /// edges. Returns `None` if the histogram is empty.
    ///
    /// This is the quantile read-off used when training POLCA thresholds
    /// from historical traces.
    pub fn quantile(&self, fraction: f64) -> Option<f64> {
        if self.total == 0 || !(0.0..=1.0).contains(&fraction) {
            return None;
        }
        let target = (fraction * self.total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(self.lo + width * (i + 1) as f64);
            }
        }
        Some(self.hi)
    }

    /// The fraction of observations in bins whose lower edge is at or above
    /// `value` — i.e. the fraction above `value`, resolved to bin width.
    pub fn fraction_above(&self, value: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let above: u64 = self
            .bins
            .iter()
            .enumerate()
            .filter(|(i, _)| self.lo + width * *i as f64 >= value)
            .map(|(_, &c)| c)
            .sum();
        above as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "invalid histogram range")]
    fn inverted_range_rejected() {
        let _ = Histogram::new(1.0, 0.0, 4);
    }

    #[test]
    fn out_of_range_values_saturate() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-5.0);
        h.record(100.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn quantile_of_uniform_data() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        // 50 % of the data is <= ~50.
        let q = h.quantile(0.5).unwrap();
        assert!((q - 50.0).abs() <= 1.0, "q = {q}");
        // 99th percentile near 99.
        let q = h.quantile(0.99).unwrap();
        assert!((q - 99.0).abs() <= 1.0, "q = {q}");
    }

    #[test]
    fn quantile_empty_or_invalid_fraction_is_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), None);
        let mut h = h;
        h.record(0.5);
        assert_eq!(h.quantile(1.5), None);
        assert_eq!(h.quantile(-0.1), None);
    }

    #[test]
    fn fraction_above_threshold() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        let f = h.fraction_above(7.0);
        assert!((f - 0.3).abs() < 1e-9, "f = {f}");
        assert_eq!(h.fraction_above(-1.0), 1.0);
        assert_eq!(h.fraction_above(10.5), 0.0);
    }

    #[test]
    fn bin_lo_edges() {
        let h = Histogram::new(0.0, 100.0, 4);
        assert_eq!(h.bin_lo(0), 0.0);
        assert_eq!(h.bin_lo(3), 75.0);
    }
}
