//! Error metrics between a reference and a reproduced series.
//!
//! §6.4 of the paper validates its synthetic trace by requiring the Mean
//! Absolute Percentage Error (MAPE) between the synthetic and original
//! power timeseries to be within 3 %. The trace-replication tests in
//! `polca-trace` enforce the same bound with [`mape`].

/// Mean Absolute Percentage Error between `actual` (reference) and
/// `predicted`, in percent.
///
/// Reference points that are exactly zero are skipped (percentage error is
/// undefined there). Returns `None` if the slices are empty, have different
/// lengths, or every reference point is zero.
///
/// # Examples
///
/// ```
/// use polca_stats::mape;
///
/// // 10% error on each point.
/// let actual = [100.0, 200.0];
/// let predicted = [110.0, 180.0];
/// assert!((mape(&actual, &predicted).unwrap() - 10.0).abs() < 1e-9);
/// ```
pub fn mape(actual: &[f64], predicted: &[f64]) -> Option<f64> {
    if actual.is_empty() || actual.len() != predicted.len() {
        return None;
    }
    let mut sum = 0.0;
    let mut n = 0usize;
    for (&a, &p) in actual.iter().zip(predicted) {
        if a != 0.0 {
            sum += ((a - p) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64 * 100.0)
    }
}

/// Mean Absolute Error. Returns `None` on empty or mismatched input.
///
/// # Examples
///
/// ```
/// use polca_stats::mae;
///
/// assert_eq!(mae(&[1.0, 2.0], &[2.0, 0.0]).unwrap(), 1.5);
/// ```
pub fn mae(actual: &[f64], predicted: &[f64]) -> Option<f64> {
    if actual.is_empty() || actual.len() != predicted.len() {
        return None;
    }
    let sum: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(&a, &p)| (a - p).abs())
        .sum();
    Some(sum / actual.len() as f64)
}

/// Root Mean Square Error. Returns `None` on empty or mismatched input.
///
/// # Examples
///
/// ```
/// use polca_stats::rmse;
///
/// assert_eq!(rmse(&[0.0, 0.0], &[3.0, 4.0]).unwrap(), (12.5f64).sqrt());
/// ```
pub fn rmse(actual: &[f64], predicted: &[f64]) -> Option<f64> {
    if actual.is_empty() || actual.len() != predicted.len() {
        return None;
    }
    let sum: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(&a, &p)| (a - p) * (a - p))
        .sum();
    Some((sum / actual.len() as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_has_zero_error() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(mape(&xs, &xs), Some(0.0));
        assert_eq!(mae(&xs, &xs), Some(0.0));
        assert_eq!(rmse(&xs, &xs), Some(0.0));
    }

    #[test]
    fn mismatched_or_empty_yields_none() {
        assert_eq!(mape(&[], &[]), None);
        assert_eq!(mape(&[1.0], &[1.0, 2.0]), None);
        assert_eq!(mae(&[], &[]), None);
        assert_eq!(rmse(&[1.0], &[]), None);
    }

    #[test]
    fn mape_skips_zero_reference_points() {
        let actual = [0.0, 100.0];
        let predicted = [5.0, 110.0];
        // Only the second point counts: 10 %.
        assert!((mape(&actual, &predicted).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mape_all_zero_reference_is_none() {
        assert_eq!(mape(&[0.0, 0.0], &[1.0, 2.0]), None);
    }

    #[test]
    fn rmse_penalizes_outliers_more_than_mae() {
        let actual = [0.0, 0.0, 0.0, 0.0];
        let predicted = [0.0, 0.0, 0.0, 8.0];
        assert!(rmse(&actual, &predicted).unwrap() > mae(&actual, &predicted).unwrap());
    }
}
