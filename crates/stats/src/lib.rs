//! Statistics utilities for the `polca` workspace.
//!
//! This crate provides the numeric building blocks used by the power
//! characterization and the POLCA oversubscription experiments:
//!
//! * [`mod@percentile`] — exact percentile/quantile computation (p50/p99/max
//!   latency SLOs from the paper's Table 6),
//! * [`mod@pearson`] — Pearson correlation and correlation matrices (Figure 7),
//! * [`error`] — MAPE/MAE/RMSE between timeseries (the paper bounds its
//!   synthetic trace replication error at 3 % MAPE, §6.4),
//! * [`timeseries`] — a timestamped sample series with resampling, moving
//!   averages and max-swing-within-window queries (Table 4's "max power
//!   spike in 2 s / 40 s"),
//! * [`histogram`] — fixed-bin histograms and empirical CDFs,
//! * [`summary`] — running summary statistics (mean/std/min/max).
//!
//! # Examples
//!
//! ```
//! use polca_stats::percentile::percentile;
//!
//! let latencies = vec![1.0, 2.0, 3.0, 4.0, 100.0];
//! assert_eq!(percentile(&latencies, 50.0), Some(3.0));
//! ```

pub mod error;
pub mod histogram;
pub mod pearson;
pub mod percentile;
pub mod summary;
pub mod timeseries;

pub use error::{mae, mape, rmse};
pub use pearson::{pearson, CorrelationMatrix};
pub use percentile::{percentile, Quantiles};
pub use summary::Summary;
pub use timeseries::TimeSeries;
