//! Timestamped sample series.
//!
//! The characterization study works almost entirely on power timeseries:
//! DCGM samples every 100 ms, the row manager every 2 s, and Table 4
//! summarizes traces by their *maximum power swing within a window* (2 s
//! for the UPS-relevant spike, 40 s for the out-of-band capping latency).
//! [`TimeSeries`] provides those queries plus the 2 s / 5 min resampling
//! used in Figure 16.

/// A series of `(time, value)` samples with non-decreasing timestamps,
/// in seconds.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TimeSeries {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a series from parallel time/value vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths or the timestamps are
    /// not non-decreasing.
    pub fn from_parts(times: Vec<f64>, values: Vec<f64>) -> Self {
        assert_eq!(times.len(), values.len(), "time/value length mismatch");
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "timestamps must be non-decreasing"
        );
        TimeSeries { times, values }
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last recorded timestamp.
    pub fn push(&mut self, time: f64, value: f64) {
        if let Some(&last) = self.times.last() {
            assert!(time >= last, "timestamps must be non-decreasing");
        }
        self.times.push(time);
        self.values.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Sample timestamps in seconds.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// Maximum value, or `None` if empty.
    pub fn peak(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Minimum value, or `None` if empty.
    pub fn trough(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Arithmetic mean of values, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.len() as f64)
        }
    }

    /// The largest increase `value(t2) - value(t1)` over any pair of samples
    /// with `0 <= t2 - t1 <= window` seconds.
    ///
    /// This is Table 4's "max power spike in *N* seconds": how much extra
    /// power the infrastructure must absorb before a control with latency
    /// `window` can react. Returns `None` if the series has fewer than two
    /// samples. The result is never negative (a monotonically decreasing
    /// series has a max spike of 0).
    pub fn max_rise_within(&self, window: f64) -> Option<f64> {
        if self.len() < 2 {
            return None;
        }
        let mut max_rise: f64 = 0.0;
        let mut start = 0usize;
        // Track the index of the minimum value within the sliding window.
        let mut min_deque: std::collections::VecDeque<usize> = Default::default();
        for i in 0..self.len() {
            while self.times[i] - self.times[start] > window {
                if min_deque.front() == Some(&start) {
                    min_deque.pop_front();
                }
                start += 1;
            }
            while let Some(&back) = min_deque.back() {
                if self.values[back] >= self.values[i] {
                    min_deque.pop_back();
                } else {
                    break;
                }
            }
            min_deque.push_back(i);
            let window_min = self.values[*min_deque.front().expect("non-empty deque")];
            max_rise = max_rise.max(self.values[i] - window_min);
        }
        Some(max_rise)
    }

    /// Resamples to fixed `bucket`-second buckets, averaging the values that
    /// fall into each bucket. Buckets with no samples are skipped. Bucket
    /// timestamps are the bucket start times.
    ///
    /// Figure 16 plots the same row-power trace at a 2 s average and a
    /// 5 min average; both come from this method.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is not strictly positive.
    pub fn resample_mean(&self, bucket: f64) -> TimeSeries {
        assert!(bucket > 0.0, "bucket must be positive");
        let mut out = TimeSeries::new();
        if self.is_empty() {
            return out;
        }
        let t0 = self.times[0];
        let mut bucket_idx = 0u64;
        let mut sum = 0.0;
        let mut count = 0usize;
        for (t, v) in self.iter() {
            let idx = ((t - t0) / bucket).floor() as u64;
            if idx != bucket_idx && count > 0 {
                out.push(t0 + bucket_idx as f64 * bucket, sum / count as f64);
                sum = 0.0;
                count = 0;
            }
            bucket_idx = idx;
            sum += v;
            count += 1;
        }
        if count > 0 {
            out.push(t0 + bucket_idx as f64 * bucket, sum / count as f64);
        }
        out
    }

    /// Centered-on-trailing moving average over `window` samples.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn moving_average(&self, window: usize) -> TimeSeries {
        assert!(window > 0, "window must be positive");
        let mut out = TimeSeries::new();
        let mut sum = 0.0;
        for i in 0..self.len() {
            sum += self.values[i];
            if i >= window {
                sum -= self.values[i - window];
            }
            let n = (i + 1).min(window);
            out.push(self.times[i], sum / n as f64);
        }
        out
    }

    /// Returns the sub-series with `start <= t < end`.
    pub fn slice_time(&self, start: f64, end: f64) -> TimeSeries {
        let lo = self.times.partition_point(|&t| t < start);
        let hi = self.times.partition_point(|&t| t < end);
        TimeSeries {
            times: self.times[lo..hi].to_vec(),
            values: self.values[lo..hi].to_vec(),
        }
    }

    /// Scales all values by `factor`, returning a new series.
    pub fn scaled(&self, factor: f64) -> TimeSeries {
        TimeSeries {
            times: self.times.clone(),
            values: self.values.iter().map(|v| v * factor).collect(),
        }
    }
}

impl FromIterator<(f64, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (f64, f64)>>(iter: I) -> Self {
        let mut ts = TimeSeries::new();
        for (t, v) in iter {
            ts.push(t, v);
        }
        ts
    }
}

impl Extend<(f64, f64)> for TimeSeries {
    fn extend<I: IntoIterator<Item = (f64, f64)>>(&mut self, iter: I) {
        for (t, v) in iter {
            self.push(t, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize, dt: f64) -> TimeSeries {
        (0..n).map(|i| (i as f64 * dt, i as f64)).collect()
    }

    #[test]
    fn push_and_basic_stats() {
        let ts = ramp(5, 1.0);
        assert_eq!(ts.len(), 5);
        assert_eq!(ts.peak(), Some(4.0));
        assert_eq!(ts.trough(), Some(0.0));
        assert_eq!(ts.mean(), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn push_rejects_time_regression() {
        let mut ts = TimeSeries::new();
        ts.push(1.0, 0.0);
        ts.push(0.5, 0.0);
    }

    #[test]
    fn max_rise_respects_window() {
        // Slow ramp: 1 unit per second. Within 2 s the max rise is 2.
        let ts = ramp(100, 1.0);
        let rise = ts.max_rise_within(2.0).unwrap();
        assert!((rise - 2.0).abs() < 1e-9, "rise {rise}");
        // Full window covers the whole ramp.
        let rise = ts.max_rise_within(1000.0).unwrap();
        assert!((rise - 99.0).abs() < 1e-9);
    }

    #[test]
    fn max_rise_of_decreasing_series_is_zero() {
        let ts: TimeSeries = (0..10).map(|i| (i as f64, -(i as f64))).collect();
        assert_eq!(ts.max_rise_within(5.0), Some(0.0));
    }

    #[test]
    fn max_rise_finds_burst() {
        let mut ts = TimeSeries::new();
        ts.push(0.0, 10.0);
        ts.push(1.0, 10.0);
        ts.push(1.5, 50.0); // burst of +40 within 0.5 s
        ts.push(10.0, 20.0);
        assert_eq!(ts.max_rise_within(1.0), Some(40.0));
    }

    #[test]
    fn max_rise_needs_two_samples() {
        let mut ts = TimeSeries::new();
        assert_eq!(ts.max_rise_within(1.0), None);
        ts.push(0.0, 1.0);
        assert_eq!(ts.max_rise_within(1.0), None);
    }

    #[test]
    fn resample_mean_buckets_correctly() {
        // Samples at 0,1,2,3 with values 0,1,2,3; bucket=2 -> means 0.5, 2.5.
        let ts = ramp(4, 1.0);
        let r = ts.resample_mean(2.0);
        assert_eq!(r.len(), 2);
        assert_eq!(r.values(), &[0.5, 2.5]);
        assert_eq!(r.times(), &[0.0, 2.0]);
    }

    #[test]
    fn resample_preserves_mean_of_uniform_series() {
        let ts = ramp(1000, 0.1);
        let r = ts.resample_mean(10.0);
        assert!((r.mean().unwrap() - ts.mean().unwrap()).abs() < 1.0);
    }

    #[test]
    fn moving_average_smooths() {
        let mut ts = TimeSeries::new();
        for i in 0..10 {
            ts.push(i as f64, if i % 2 == 0 { 0.0 } else { 2.0 });
        }
        let ma = ts.moving_average(2);
        // After warm-up, every sample is the average of a 0 and a 2.
        assert!(ma.values()[1..].iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn slice_time_bounds_are_half_open() {
        let ts = ramp(10, 1.0);
        let s = ts.slice_time(2.0, 5.0);
        assert_eq!(s.times(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn scaled_multiplies_values() {
        let ts = ramp(3, 1.0).scaled(2.0);
        assert_eq!(ts.values(), &[0.0, 2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_parts_rejects_mismatch() {
        let _ = TimeSeries::from_parts(vec![0.0], vec![]);
    }
}
