//! Pearson correlation coefficients.
//!
//! Figure 7 of the paper shows the pairwise Pearson correlations between
//! GPU performance counters (power, GPU utilization, memory utilization,
//! SM activity, tensor-core activity, PCIe TX/RX) during the prompt and
//! token phases of BLOOM inference. [`CorrelationMatrix`] regenerates that
//! figure from simulated counter timeseries.

/// Computes the Pearson correlation coefficient between two equally long
/// sample slices.
///
/// Returns `None` if the slices are empty, have different lengths, or if
/// either has zero variance (correlation undefined).
///
/// # Examples
///
/// ```
/// use polca_stats::pearson;
///
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.0, 4.0, 6.0, 8.0];
/// assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
///
/// let z = [8.0, 6.0, 4.0, 2.0];
/// assert!((pearson(&x, &z).unwrap() + 1.0).abs() < 1e-12);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.is_empty() || x.len() != y.len() {
        return None;
    }
    let n = x.len() as f64;
    let mean_x = x.iter().sum::<f64>() / n;
    let mean_y = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mean_x;
        let dy = b - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x == 0.0 || var_y == 0.0 {
        return None;
    }
    Some(cov / (var_x.sqrt() * var_y.sqrt()))
}

/// A symmetric matrix of pairwise Pearson correlations between named
/// variable series, as plotted in the paper's Figure 7.
#[derive(Debug, Clone)]
pub struct CorrelationMatrix {
    names: Vec<String>,
    /// Row-major `names.len() × names.len()` coefficients. Diagonal is 1.0.
    values: Vec<f64>,
}

impl CorrelationMatrix {
    /// Builds the matrix from `(name, samples)` pairs. All series must have
    /// the same length.
    ///
    /// Pairs whose correlation is undefined (zero variance) are reported as
    /// `0.0`, matching how monitoring dashboards render flat counters.
    ///
    /// # Panics
    ///
    /// Panics if the series lengths differ.
    pub fn from_series(series: &[(&str, &[f64])]) -> Self {
        let n = series.len();
        if let Some(first) = series.first() {
            for (name, s) in series {
                assert_eq!(
                    s.len(),
                    first.1.len(),
                    "series `{name}` has mismatched length"
                );
            }
        }
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                values[i * n + j] = if i == j {
                    1.0
                } else {
                    pearson(series[i].1, series[j].1).unwrap_or(0.0)
                };
            }
        }
        CorrelationMatrix {
            names: series.iter().map(|(name, _)| name.to_string()).collect(),
            values,
        }
    }

    /// Variable names, in matrix order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The coefficient between variables `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.len() && j < self.len(), "index out of bounds");
        self.values[i * self.len() + j]
    }

    /// Looks up the coefficient by variable names.
    pub fn by_name(&self, a: &str, b: &str) -> Option<f64> {
        let i = self.names.iter().position(|n| n == a)?;
        let j = self.names.iter().position(|n| n == b)?;
        Some(self.get(i, j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mismatched_lengths_yield_none() {
        assert_eq!(pearson(&[1.0], &[1.0, 2.0]), None);
        assert_eq!(pearson(&[], &[]), None);
    }

    #[test]
    fn zero_variance_yields_none() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
    }

    #[test]
    fn uncorrelated_is_near_zero() {
        // Alternating series vs linear ramp: correlation exactly 0 by symmetry.
        let x = [1.0, -1.0, 1.0, -1.0];
        let y = [1.0, 1.0, -1.0, -1.0];
        assert!(pearson(&x, &y).unwrap().abs() < 1e-12);
    }

    #[test]
    fn correlation_is_symmetric_and_bounded() {
        let x = [0.3, 1.7, 2.2, 0.1, 5.5];
        let y = [1.2, 0.4, 3.3, 2.2, 4.0];
        let r_xy = pearson(&x, &y).unwrap();
        let r_yx = pearson(&y, &x).unwrap();
        assert!((r_xy - r_yx).abs() < 1e-12);
        assert!((-1.0..=1.0).contains(&r_xy));
    }

    #[test]
    fn matrix_diagonal_is_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [3.0, 1.0, 2.0];
        let m = CorrelationMatrix::from_series(&[("a", &a), ("b", &b)]);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 1), 1.0);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn matrix_lookup_by_name() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        let m = CorrelationMatrix::from_series(&[("power", &a), ("sm", &b)]);
        assert!((m.by_name("power", "sm").unwrap() - 1.0).abs() < 1e-12);
        assert!(m.by_name("power", "nope").is_none());
    }

    #[test]
    #[should_panic(expected = "mismatched length")]
    fn matrix_rejects_ragged_series() {
        let a = [1.0, 2.0];
        let b = [1.0];
        let _ = CorrelationMatrix::from_series(&[("a", &a), ("b", &b)]);
    }

    #[test]
    fn flat_series_reported_as_zero_in_matrix() {
        let a = [1.0, 1.0, 1.0];
        let b = [1.0, 2.0, 3.0];
        let m = CorrelationMatrix::from_series(&[("flat", &a), ("ramp", &b)]);
        assert_eq!(m.by_name("flat", "ramp"), Some(0.0));
    }
}
