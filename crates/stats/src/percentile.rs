//! Exact percentile computation over finite samples.
//!
//! The POLCA evaluation reports p50/p99/max latency impact per priority
//! class (Table 6, Figures 13–17). We use the nearest-rank-with-linear-
//! interpolation definition (the same as NumPy's default `linear` method)
//! so results are stable and easy to cross-check.

/// Returns the `q`-th percentile (`0.0..=100.0`) of `data`.
///
/// Uses linear interpolation between closest ranks. Returns `None` for an
/// empty slice or a `q` outside `[0, 100]`. The input does not need to be
/// sorted; a sorted copy is made internally.
///
/// # Examples
///
/// ```
/// use polca_stats::percentile::percentile;
///
/// let xs = vec![15.0, 20.0, 35.0, 40.0, 50.0];
/// assert_eq!(percentile(&xs, 0.0), Some(15.0));
/// assert_eq!(percentile(&xs, 100.0), Some(50.0));
/// assert_eq!(percentile(&xs, 50.0), Some(35.0));
/// ```
pub fn percentile(data: &[f64], q: f64) -> Option<f64> {
    if data.is_empty() || !(0.0..=100.0).contains(&q) || q.is_nan() {
        return None;
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    Some(percentile_of_sorted(&sorted, q))
}

/// Returns the `q`-th percentile of an already-sorted, non-empty slice.
///
/// # Panics
///
/// Panics if `data` is empty. `q` is clamped to `[0, 100]`.
pub fn percentile_of_sorted(data: &[f64], q: f64) -> f64 {
    assert!(!data.is_empty(), "percentile of empty slice");
    let q = q.clamp(0.0, 100.0);
    if data.len() == 1 {
        return data[0];
    }
    let rank = q / 100.0 * (data.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    data[lo] + (data[hi] - data[lo]) * frac
}

/// A digest of the percentiles the paper reports for latency SLOs.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Quantiles {
    /// Median (p50).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum observed value (p100).
    pub max: f64,
    /// Minimum observed value.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of samples.
    pub count: usize,
}

impl Quantiles {
    /// Computes the digest from raw samples. Returns `None` if `data` is
    /// empty.
    ///
    /// # Examples
    ///
    /// ```
    /// use polca_stats::Quantiles;
    ///
    /// let q = Quantiles::from_samples(&[1.0, 2.0, 3.0]).unwrap();
    /// assert_eq!(q.p50, 2.0);
    /// assert_eq!(q.max, 3.0);
    /// assert_eq!(q.count, 3);
    /// ```
    pub fn from_samples(data: &[f64]) -> Option<Self> {
        if data.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
        let sum: f64 = sorted.iter().sum();
        Some(Quantiles {
            p50: percentile_of_sorted(&sorted, 50.0),
            p90: percentile_of_sorted(&sorted, 90.0),
            p99: percentile_of_sorted(&sorted, 99.0),
            max: *sorted.last().expect("non-empty"),
            min: sorted[0],
            mean: sum / sorted.len() as f64,
            count: sorted.len(),
        })
    }

    /// Returns this digest with every field divided by the matching field of
    /// `baseline`, producing the "normalized latency" values of Figures 13,
    /// 15 and 17 (value 1.0 = identical to baseline).
    ///
    /// Fields where the baseline is zero are reported as 1.0 (no change) to
    /// keep ratios meaningful for idle metrics.
    pub fn normalized_to(&self, baseline: &Quantiles) -> Quantiles {
        fn ratio(a: f64, b: f64) -> f64 {
            if b == 0.0 {
                1.0
            } else {
                a / b
            }
        }
        Quantiles {
            p50: ratio(self.p50, baseline.p50),
            p90: ratio(self.p90, baseline.p90),
            p99: ratio(self.p99, baseline.p99),
            max: ratio(self.max, baseline.max),
            min: ratio(self.min, baseline.min),
            mean: ratio(self.mean, baseline.mean),
            count: self.count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_slice_yields_none() {
        assert_eq!(percentile(&[], 50.0), None);
        assert!(Quantiles::from_samples(&[]).is_none());
    }

    #[test]
    fn out_of_range_q_yields_none() {
        assert_eq!(percentile(&[1.0], -0.1), None);
        assert_eq!(percentile(&[1.0], 100.1), None);
        assert_eq!(percentile(&[1.0], f64::NAN), None);
    }

    #[test]
    fn single_element() {
        assert_eq!(percentile(&[42.0], 0.0), Some(42.0));
        assert_eq!(percentile(&[42.0], 99.0), Some(42.0));
    }

    #[test]
    fn interpolates_between_ranks() {
        let xs = [10.0, 20.0];
        assert_eq!(percentile(&xs, 50.0), Some(15.0));
        assert_eq!(percentile(&xs, 25.0), Some(12.5));
    }

    #[test]
    fn unsorted_input_is_handled() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 50.0), Some(3.0));
        assert_eq!(percentile(&xs, 100.0), Some(5.0));
    }

    #[test]
    fn quantiles_digest_matches_direct_percentiles() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let q = Quantiles::from_samples(&xs).unwrap();
        assert_eq!(q.p50, percentile(&xs, 50.0).unwrap());
        assert_eq!(q.p99, percentile(&xs, 99.0).unwrap());
        assert_eq!(q.max, 999.0);
        assert_eq!(q.min, 0.0);
        assert!((q.mean - 499.5).abs() < 1e-9);
    }

    #[test]
    fn normalization_is_identity_against_self() {
        let q = Quantiles::from_samples(&[1.0, 2.0, 3.0, 10.0]).unwrap();
        let n = q.normalized_to(&q);
        assert!((n.p50 - 1.0).abs() < 1e-12);
        assert!((n.p99 - 1.0).abs() < 1e-12);
        assert!((n.max - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_handles_zero_baseline() {
        let q = Quantiles::from_samples(&[0.0, 0.0]).unwrap();
        let n = q.normalized_to(&q);
        assert_eq!(n.p50, 1.0);
    }
}
