//! Running summary statistics.
//!
//! [`Summary`] accumulates count/mean/variance/min/max in a single pass
//! using Welford's algorithm, so long simulations (the 6-week POLCA traces
//! run to millions of samples) can report statistics without retaining
//! every sample.

/// Single-pass summary accumulator (Welford's online algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    ///
    /// # Examples
    ///
    /// ```
    /// use polca_stats::Summary;
    ///
    /// let mut s = Summary::new();
    /// s.extend([1.0, 2.0, 3.0]);
    /// assert_eq!(s.mean(), Some(2.0));
    /// assert_eq!(s.min(), Some(1.0));
    /// assert_eq!(s.max(), Some(3.0));
    /// ```
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates one observation.
    pub fn record(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean, or `None` if nothing has been recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance, or `None` if nothing has been recorded.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Population standard deviation, or `None` if nothing has been recorded.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Minimum, or `None` if nothing has been recorded.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum, or `None` if nothing has been recorded.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count = total;
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_yields_none() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn matches_naive_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s: Summary = xs.iter().copied().collect();
        assert_eq!(s.mean(), Some(5.0));
        assert_eq!(s.std_dev(), Some(2.0));
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let combined: Summary = xs.iter().copied().collect();
        let mut a: Summary = xs[..37].iter().copied().collect();
        let b: Summary = xs[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert!((a.mean().unwrap() - combined.mean().unwrap()).abs() < 1e-9);
        assert!((a.variance().unwrap() - combined.variance().unwrap()).abs() < 1e-9);
        assert_eq!(a.min(), combined.min());
        assert_eq!(a.max(), combined.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }
}
