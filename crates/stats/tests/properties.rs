//! Property-based tests for the statistics primitives.

use proptest::prelude::*;

use polca_stats::percentile::{percentile, Quantiles};
use polca_stats::{mae, mape, pearson, rmse, Summary, TimeSeries};

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6..1e6f64, 1..max_len)
}

proptest! {
    #[test]
    fn percentile_is_bounded_by_min_and_max(xs in finite_vec(200), q in 0.0..=100.0f64) {
        let p = percentile(&xs, q).unwrap();
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
    }

    #[test]
    fn percentile_is_monotone_in_q(xs in finite_vec(100), q1 in 0.0..=100.0f64, q2 in 0.0..=100.0f64) {
        let (lo_q, hi_q) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let p_lo = percentile(&xs, lo_q).unwrap();
        let p_hi = percentile(&xs, hi_q).unwrap();
        prop_assert!(p_lo <= p_hi + 1e-9);
    }

    #[test]
    fn quantile_digest_orders_its_fields(xs in finite_vec(100)) {
        let q = Quantiles::from_samples(&xs).unwrap();
        prop_assert!(q.min <= q.p50 + 1e-9);
        prop_assert!(q.p50 <= q.p90 + 1e-9);
        prop_assert!(q.p90 <= q.p99 + 1e-9);
        prop_assert!(q.p99 <= q.max + 1e-9);
        prop_assert!(q.mean >= q.min - 1e-9 && q.mean <= q.max + 1e-9);
        prop_assert_eq!(q.count, xs.len());
    }

    #[test]
    fn summary_matches_naive_mean(xs in finite_vec(300)) {
        let s: Summary = xs.iter().copied().collect();
        let naive = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean().unwrap() - naive).abs() < 1e-6 * (1.0 + naive.abs()));
    }

    #[test]
    fn summary_merge_is_order_independent(xs in finite_vec(100), split in 0usize..100) {
        let split = split.min(xs.len());
        let mut a: Summary = xs[..split].iter().copied().collect();
        let b: Summary = xs[split..].iter().copied().collect();
        a.merge(&b);
        let whole: Summary = xs.iter().copied().collect();
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-6);
        prop_assert!((a.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-3);
    }

    #[test]
    fn pearson_is_within_unit_interval(pairs in prop::collection::vec((-1e3..1e3f64, -1e3..1e3f64), 3..100)) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(r) = pearson(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }

    #[test]
    fn error_metrics_are_non_negative(xs in finite_vec(100), ys in finite_vec(100)) {
        let n = xs.len().min(ys.len());
        let (xs, ys) = (&xs[..n], &ys[..n]);
        if let Some(m) = mape(xs, ys) {
            prop_assert!(m >= 0.0);
        }
        prop_assert!(mae(xs, ys).unwrap() >= 0.0);
        prop_assert!(rmse(xs, ys).unwrap() >= mae(xs, ys).unwrap() - 1e-9);
    }

    #[test]
    fn max_rise_is_monotone_in_window(values in prop::collection::vec(0.0..1e4f64, 2..200), w1 in 0.1..50.0f64, w2 in 0.1..50.0f64) {
        let ts: TimeSeries = values.iter().enumerate().map(|(i, &v)| (i as f64, v)).collect();
        let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        let r_lo = ts.max_rise_within(lo).unwrap();
        let r_hi = ts.max_rise_within(hi).unwrap();
        prop_assert!(r_lo <= r_hi + 1e-9, "rise({lo}) = {r_lo} > rise({hi}) = {r_hi}");
        // Never negative and never exceeds the full range.
        prop_assert!(r_lo >= 0.0);
        let span = ts.peak().unwrap() - ts.trough().unwrap();
        prop_assert!(r_hi <= span + 1e-9);
    }

    #[test]
    fn resample_preserves_bounds(values in prop::collection::vec(0.0..1e4f64, 1..200), bucket in 0.5..20.0f64) {
        let ts: TimeSeries = values.iter().enumerate().map(|(i, &v)| (i as f64 * 0.37, v)).collect();
        let r = ts.resample_mean(bucket);
        prop_assert!(!r.is_empty());
        prop_assert!(r.peak().unwrap() <= ts.peak().unwrap() + 1e-9);
        prop_assert!(r.trough().unwrap() >= ts.trough().unwrap() - 1e-9);
    }

    #[test]
    fn moving_average_stays_within_range(values in prop::collection::vec(-1e3..1e3f64, 1..100), window in 1usize..20) {
        let ts: TimeSeries = values.iter().enumerate().map(|(i, &v)| (i as f64, v)).collect();
        let ma = ts.moving_average(window);
        prop_assert_eq!(ma.len(), ts.len());
        prop_assert!(ma.peak().unwrap() <= ts.peak().unwrap() + 1e-9);
        prop_assert!(ma.trough().unwrap() >= ts.trough().unwrap() - 1e-9);
    }
}
