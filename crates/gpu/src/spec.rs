//! Device constants for the GPUs in the study.

/// Static characteristics of one GPU model.
///
/// The A100 numbers follow the public product briefs the paper cites
/// (\[44, 46\]); the transient peak captures the paper's observation that
/// "peak GPU power far exceeds the overall server GPU TDP (by up to
/// 500 W)" across 8 GPUs, i.e. roughly 6 % per GPU above TDP.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"A100-80GB"`.
    pub name: &'static str,
    /// Thermal design power in watts; also the default power cap.
    pub tdp_watts: f64,
    /// Idle power draw in watts (≈20 % of TDP per Figure 4's Flan-T5
    /// synchronization troughs).
    pub idle_watts: f64,
    /// Highest instantaneous power the device can transiently draw, in
    /// watts. Exceeds TDP: prompt-phase spikes go beyond TDP (Insight 4).
    pub transient_peak_watts: f64,
    /// Minimum configurable SM clock in MHz.
    pub min_sm_clock_mhz: f64,
    /// Base (guaranteed) SM clock in MHz — 1275 MHz on A100 (Table 5).
    pub base_sm_clock_mhz: f64,
    /// Maximum boost SM clock in MHz — 1410 MHz on A100.
    pub max_sm_clock_mhz: f64,
    /// HBM capacity in GiB.
    pub memory_gib: f64,
    /// HBM bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Peak dense FP16 tensor throughput in TFLOPS.
    pub peak_fp16_tflops: f64,
    /// Lowest configurable power cap in watts (`nvidia-smi -pl` lower
    /// bound; 300–400 W window in the paper's methodology §3.4).
    pub min_power_cap_watts: f64,
}

impl GpuSpec {
    /// NVIDIA A100-SXM4-80GB (the inference machine in §3.4).
    pub const fn a100_80gb() -> Self {
        GpuSpec {
            name: "A100-80GB",
            tdp_watts: 400.0,
            idle_watts: 80.0,
            transient_peak_watts: 425.0,
            min_sm_clock_mhz: 210.0,
            base_sm_clock_mhz: 1275.0,
            max_sm_clock_mhz: 1410.0,
            memory_gib: 80.0,
            mem_bandwidth_gbps: 2039.0,
            peak_fp16_tflops: 312.0,
            min_power_cap_watts: 100.0,
        }
    }

    /// NVIDIA A100-SXM4-40GB (the training machine in §3.4).
    pub const fn a100_40gb() -> Self {
        GpuSpec {
            name: "A100-40GB",
            tdp_watts: 400.0,
            idle_watts: 80.0,
            transient_peak_watts: 425.0,
            min_sm_clock_mhz: 210.0,
            base_sm_clock_mhz: 1275.0,
            max_sm_clock_mhz: 1410.0,
            memory_gib: 40.0,
            mem_bandwidth_gbps: 1555.0,
            peak_fp16_tflops: 312.0,
            min_power_cap_watts: 100.0,
        }
    }

    /// NVIDIA H100-SXM5-80GB (mentioned in §4.2/§6.7 as the next
    /// generation; useful for what-if sweeps).
    pub const fn h100_80gb() -> Self {
        GpuSpec {
            name: "H100-80GB",
            tdp_watts: 700.0,
            idle_watts: 110.0,
            transient_peak_watts: 750.0,
            min_sm_clock_mhz: 210.0,
            base_sm_clock_mhz: 1665.0,
            max_sm_clock_mhz: 1980.0,
            memory_gib: 80.0,
            mem_bandwidth_gbps: 3350.0,
            peak_fp16_tflops: 989.0,
            min_power_cap_watts: 200.0,
        }
    }

    /// The SM clock the power brake forces (288 MHz per Table 5 — "brings
    /// all GPUs down to almost a halt").
    pub const fn power_brake_clock_mhz(&self) -> f64 {
        288.0
    }

    /// Fraction of TDP drawn at idle.
    pub fn idle_fraction(&self) -> f64 {
        self.idle_watts / self.tdp_watts
    }

    /// Clamps a requested SM clock into the configurable range.
    pub fn clamp_clock(&self, mhz: f64) -> f64 {
        mhz.clamp(self.min_sm_clock_mhz, self.max_sm_clock_mhz)
    }

    /// Whether `mhz` is a configurable SM clock for this device.
    pub fn clock_in_range(&self, mhz: f64) -> bool {
        (self.min_sm_clock_mhz..=self.max_sm_clock_mhz).contains(&mhz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_constants_match_paper() {
        let spec = GpuSpec::a100_80gb();
        assert_eq!(spec.tdp_watts, 400.0);
        assert_eq!(spec.base_sm_clock_mhz, 1275.0); // Table 5 T1 frequency
        assert_eq!(spec.max_sm_clock_mhz, 1410.0);
        assert_eq!(spec.power_brake_clock_mhz(), 288.0); // Table 5 brake
        assert!(spec.transient_peak_watts > spec.tdp_watts); // Insight 4
    }

    #[test]
    fn idle_fraction_near_twenty_percent() {
        let spec = GpuSpec::a100_80gb();
        assert!((spec.idle_fraction() - 0.2).abs() < 0.01);
    }

    #[test]
    fn clock_clamping() {
        let spec = GpuSpec::a100_80gb();
        assert_eq!(spec.clamp_clock(5000.0), 1410.0);
        assert_eq!(spec.clamp_clock(0.0), 210.0);
        assert!(spec.clock_in_range(1275.0));
        assert!(!spec.clock_in_range(100.0));
    }

    #[test]
    fn h100_is_denser_than_a100() {
        let a = GpuSpec::a100_80gb();
        let h = GpuSpec::h100_80gb();
        assert!(h.tdp_watts > a.tdp_watts);
        assert!(h.peak_fp16_tflops > a.peak_fp16_tflops);
        assert!(h.mem_bandwidth_gbps > a.mem_bandwidth_gbps);
    }
}
