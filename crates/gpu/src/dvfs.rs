//! DVFS power and performance scaling.
//!
//! The paper's central power-management lever is the SM clock: "the
//! relationship between power reduction and performance is superlinear —
//! significant power (up to 20 %) can be reclaimed for minimal performance
//! loss (up to 7 %)" (Insight 7, Figure 10). Two standard models reproduce
//! that superlinearity:
//!
//! * dynamic power scales as `r^α` with clock ratio `r` and `α ≈ 1.2`
//!   (near the voltage floor of the A100's upper clock range `P ∝ f·V²`
//!   is close to linear in `f`; the calibration reproduces the paper's
//!   "1.1 GHz lock ⇒ ~20 % peak power reduction" measurement),
//! * runtime scales as `c/r + (1 − c)` where `c` is the compute-bound
//!   fraction of the phase — memory-bound work (token sampling) is largely
//!   insensitive to the SM clock.

/// Analytic DVFS scaling model shared by all simulated GPUs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvfsModel {
    /// Exponent `α` of the dynamic-power-vs-clock-ratio curve.
    pub power_exponent: f64,
}

impl Default for DvfsModel {
    fn default() -> Self {
        DvfsModel {
            power_exponent: 1.2,
        }
    }
}

impl DvfsModel {
    /// Creates a model with the given power exponent.
    ///
    /// # Panics
    ///
    /// Panics if `power_exponent < 1.0` (dynamic power cannot scale
    /// sublinearly with frequency).
    pub fn new(power_exponent: f64) -> Self {
        assert!(power_exponent >= 1.0, "power exponent must be at least 1.0");
        DvfsModel { power_exponent }
    }

    /// Dynamic-power multiplier at clock ratio `r` (`0.0..=1.0` of max
    /// clock). `r` is clamped into `[0, 1]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use polca_gpu::DvfsModel;
    ///
    /// let m = DvfsModel::default();
    /// assert_eq!(m.power_scale(1.0), 1.0);
    /// // ~21 % below max clock (the paper's 1.1 GHz lock) reclaims ~25 %
    /// // of dynamic power.
    /// let s = m.power_scale(1110.0 / 1410.0);
    /// assert!(s < 0.78 && s > 0.72);
    /// ```
    pub fn power_scale(&self, r: f64) -> f64 {
        r.clamp(0.0, 1.0).powf(self.power_exponent)
    }

    /// Execution-time multiplier (≥ 1) at clock ratio `r` for a phase whose
    /// compute-bound fraction is `c` (`0` = fully memory-bound, `1` = fully
    /// compute-bound).
    ///
    /// # Panics
    ///
    /// Panics if `r` is not in `(0, 1]` or `c` not in `[0, 1]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use polca_gpu::DvfsModel;
    ///
    /// let m = DvfsModel::default();
    /// // A fully memory-bound phase does not slow down at all.
    /// assert_eq!(m.slowdown(0.5, 0.0), 1.0);
    /// // A fully compute-bound phase slows inversely with clock.
    /// assert_eq!(m.slowdown(0.5, 1.0), 2.0);
    /// ```
    pub fn slowdown(&self, r: f64, c: f64) -> f64 {
        assert!(r > 0.0 && r <= 1.0, "clock ratio must be in (0, 1]");
        assert!(
            (0.0..=1.0).contains(&c),
            "compute fraction must be in [0, 1]"
        );
        c / r + (1.0 - c)
    }

    /// Throughput multiplier (≤ 1), the reciprocal of [`slowdown`].
    ///
    /// [`slowdown`]: DvfsModel::slowdown
    pub fn perf_scale(&self, r: f64, c: f64) -> f64 {
        1.0 / self.slowdown(r, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_scale_endpoints() {
        let m = DvfsModel::default();
        assert_eq!(m.power_scale(1.0), 1.0);
        assert_eq!(m.power_scale(0.0), 0.0);
        // Clamped outside [0, 1].
        assert_eq!(m.power_scale(1.5), 1.0);
        assert_eq!(m.power_scale(-0.5), 0.0);
    }

    #[test]
    fn power_scale_is_superlinear() {
        let m = DvfsModel::default();
        // Power drops faster than frequency.
        for r in [0.95, 0.9, 0.8, 0.7] {
            assert!(m.power_scale(r) < r, "r = {r}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 1.0")]
    fn sublinear_exponent_rejected() {
        let _ = DvfsModel::new(0.5);
    }

    #[test]
    fn slowdown_blends_by_compute_fraction() {
        let m = DvfsModel::default();
        let half = m.slowdown(0.5, 0.5);
        assert!((half - 1.5).abs() < 1e-12);
        // More compute-bound phases are hurt more by a frequency cap.
        assert!(m.slowdown(0.8, 0.9) > m.slowdown(0.8, 0.1));
    }

    #[test]
    #[should_panic(expected = "clock ratio")]
    fn slowdown_rejects_zero_ratio() {
        let _ = DvfsModel::default().slowdown(0.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "compute fraction")]
    fn slowdown_rejects_bad_fraction() {
        let _ = DvfsModel::default().slowdown(0.5, 1.5);
    }

    #[test]
    fn insight7_superlinear_tradeoff() {
        // Paper: ~20 % peak power reclaimed for ≤7 % performance loss on a
        // request whose runtime is dominated by the memory-bound token
        // phase (compute fraction ~0.25 end to end).
        let m = DvfsModel::default();
        let r: f64 = 1110.0 / 1410.0; // the paper's 1.1 GHz lock
        let idle_frac = 0.2;
        let power_reduction = (1.0 - (idle_frac + (1.0 - idle_frac) * m.power_scale(r))) * 100.0;
        let perf_loss = (m.slowdown(r, 0.25) - 1.0) * 100.0;
        assert!(
            power_reduction > 15.0,
            "power reduction {power_reduction:.1}%"
        );
        assert!(perf_loss < 8.0, "perf loss {perf_loss:.1}%");
        assert!(power_reduction > 2.0 * perf_loss);
    }

    #[test]
    fn perf_scale_is_reciprocal() {
        let m = DvfsModel::default();
        let s = m.slowdown(0.7, 0.6);
        assert!((m.perf_scale(0.7, 0.6) * s - 1.0).abs() < 1e-12);
    }
}
