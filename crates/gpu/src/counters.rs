//! DCGM-style GPU performance counters.
//!
//! §3.4 of the paper profiles power, utilization, SM activity, tensor-core
//! activity, memory activity and PCIe TX/RX at a 100 ms interval, and
//! Figure 7 shows their pairwise Pearson correlations separately for the
//! prompt and token phases of BLOOM inference:
//!
//! * **prompt**: power is strongly correlated with SM and tensor-core
//!   activity and *inversely* correlated with memory activity,
//! * **token**: counters are generally uncorrelated with each other, with
//!   lower power draw overall.
//!
//! [`CounterSample::sample`] generates counter vectors with exactly those
//! phase-conditional couplings so the correlation matrix regenerates.

use polca_sim::SimRng;

/// Which inference phase a counter sample was taken in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// Parallel, compute-intensive prompt processing.
    Prompt,
    /// Sequential, memory-bandwidth-bound token sampling.
    Token,
    /// No active request.
    Idle,
}

impl PhaseKind {
    /// Nominal workload intensity (fraction of maximum dynamic power) for
    /// this phase on a large decoder model. Prompt bursts hit the
    /// transient peak; token sampling sits at ~60 % (Figure 6).
    pub fn nominal_intensity(self) -> f64 {
        match self {
            PhaseKind::Prompt => 1.0,
            PhaseKind::Token => 0.6,
            PhaseKind::Idle => 0.0,
        }
    }
}

/// One 100 ms DCGM sample of the counters in Figure 7.
///
/// All activity counters are fractions in `[0, 1]`; power is in watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterSample {
    /// Instantaneous board power in watts.
    pub power_watts: f64,
    /// Coarse GPU utilization (any kernel resident).
    pub gpu_util: f64,
    /// Memory (HBM bandwidth) activity.
    pub mem_activity: f64,
    /// Streaming-multiprocessor activity.
    pub sm_activity: f64,
    /// Tensor-core activity.
    pub tensor_activity: f64,
    /// PCIe transmit utilization.
    pub pcie_tx: f64,
    /// PCIe receive utilization.
    pub pcie_rx: f64,
}

impl CounterSample {
    /// Draws one correlated counter sample for `phase`, given the phase's
    /// base power level and the device TDP (for normalization of the
    /// coupling strength).
    pub fn sample(
        phase: PhaseKind,
        base_power_watts: f64,
        tdp_watts: f64,
        rng: &mut SimRng,
    ) -> Self {
        match phase {
            PhaseKind::Prompt => {
                // A shared "burst level" drives power, SM and tensor
                // activity together, and *displaces* memory activity.
                let burst = rng.normal(0.0, 1.0);
                let power = base_power_watts + burst * 0.04 * tdp_watts + rng.normal(0.0, 2.0);
                CounterSample {
                    power_watts: power.max(0.0),
                    gpu_util: (0.98 + 0.01 * burst + rng.normal(0.0, 0.005)).clamp(0.0, 1.0),
                    sm_activity: (0.92 + 0.05 * burst + rng.normal(0.0, 0.01)).clamp(0.0, 1.0),
                    tensor_activity: (0.85 + 0.06 * burst + rng.normal(0.0, 0.015)).clamp(0.0, 1.0),
                    mem_activity: (0.30 - 0.08 * burst + rng.normal(0.0, 0.015)).clamp(0.0, 1.0),
                    pcie_tx: (0.05 + rng.normal(0.0, 0.01)).clamp(0.0, 1.0),
                    pcie_rx: (0.06 + rng.normal(0.0, 0.01)).clamp(0.0, 1.0),
                }
            }
            PhaseKind::Token => CounterSample {
                // Independent draws: the token phase counters decorrelate.
                power_watts: (base_power_watts + rng.normal(0.0, 0.02 * tdp_watts)).max(0.0),
                gpu_util: (0.95 + rng.normal(0.0, 0.02)).clamp(0.0, 1.0),
                sm_activity: (0.45 + rng.normal(0.0, 0.05)).clamp(0.0, 1.0),
                tensor_activity: (0.25 + rng.normal(0.0, 0.05)).clamp(0.0, 1.0),
                mem_activity: (0.85 + rng.normal(0.0, 0.04)).clamp(0.0, 1.0),
                pcie_tx: (0.04 + rng.normal(0.0, 0.01)).clamp(0.0, 1.0),
                pcie_rx: (0.04 + rng.normal(0.0, 0.01)).clamp(0.0, 1.0),
            },
            PhaseKind::Idle => CounterSample {
                power_watts: (base_power_watts + rng.normal(0.0, 1.0)).max(0.0),
                gpu_util: 0.0,
                sm_activity: 0.0,
                tensor_activity: 0.0,
                mem_activity: (0.01 + rng.normal(0.0, 0.003)).clamp(0.0, 1.0),
                pcie_tx: 0.0,
                pcie_rx: 0.0,
            },
        }
    }

    /// Counter names in the order Figure 7 plots them.
    pub const NAMES: [&'static str; 7] = [
        "Power",
        "GPU Utilization",
        "Memory Activity",
        "SM Activity",
        "Tensor Core Activity",
        "PCIe Transmit",
        "PCIe Receive",
    ];

    /// The sample as a vector in [`NAMES`](Self::NAMES) order.
    pub fn as_vec(&self) -> [f64; 7] {
        [
            self.power_watts,
            self.gpu_util,
            self.mem_activity,
            self.sm_activity,
            self.tensor_activity,
            self.pcie_tx,
            self.pcie_rx,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(phase: PhaseKind, n: usize) -> Vec<CounterSample> {
        let mut rng = SimRng::from_seed_stream(99, 7);
        (0..n)
            .map(|_| CounterSample::sample(phase, 400.0, 400.0, &mut rng))
            .collect()
    }

    fn column(samples: &[CounterSample], idx: usize) -> Vec<f64> {
        samples.iter().map(|s| s.as_vec()[idx]).collect()
    }

    fn corr(samples: &[CounterSample], a: usize, b: usize) -> f64 {
        let xa = column(samples, a);
        let xb = column(samples, b);
        // Inline Pearson to avoid a circular dev-dependency on polca-stats.
        let n = xa.len() as f64;
        let ma = xa.iter().sum::<f64>() / n;
        let mb = xb.iter().sum::<f64>() / n;
        let cov: f64 = xa.iter().zip(&xb).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f64 = xa.iter().map(|x| (x - ma) * (x - ma)).sum();
        let vb: f64 = xb.iter().map(|y| (y - mb) * (y - mb)).sum();
        cov / (va.sqrt() * vb.sqrt())
    }

    const POWER: usize = 0;
    const MEM: usize = 2;
    const SM: usize = 3;
    const TENSOR: usize = 4;

    #[test]
    fn prompt_power_correlates_with_sm_and_tensor() {
        let s = series(PhaseKind::Prompt, 2000);
        assert!(
            corr(&s, POWER, SM) > 0.7,
            "power-sm {}",
            corr(&s, POWER, SM)
        );
        assert!(corr(&s, POWER, TENSOR) > 0.6);
        assert!(corr(&s, SM, TENSOR) > 0.6);
    }

    #[test]
    fn prompt_power_anticorrelates_with_memory() {
        let s = series(PhaseKind::Prompt, 2000);
        assert!(
            corr(&s, POWER, MEM) < -0.5,
            "power-mem {}",
            corr(&s, POWER, MEM)
        );
    }

    #[test]
    fn token_counters_are_uncorrelated() {
        let s = series(PhaseKind::Token, 2000);
        for (a, b) in [(POWER, SM), (POWER, TENSOR), (POWER, MEM), (SM, MEM)] {
            let r = corr(&s, a, b);
            assert!(r.abs() < 0.15, "({a},{b}) corr {r}");
        }
    }

    #[test]
    fn token_phase_draws_less_power_than_prompt() {
        let mut rng = SimRng::from_seed_stream(1, 1);
        let p = CounterSample::sample(PhaseKind::Prompt, 400.0, 400.0, &mut rng);
        let t = CounterSample::sample(PhaseKind::Token, 280.0, 400.0, &mut rng);
        assert!(p.power_watts > t.power_watts);
    }

    #[test]
    fn nominal_intensities_are_ordered() {
        assert!(PhaseKind::Prompt.nominal_intensity() > PhaseKind::Token.nominal_intensity());
        assert!(PhaseKind::Token.nominal_intensity() > PhaseKind::Idle.nominal_intensity());
        assert_eq!(PhaseKind::Idle.nominal_intensity(), 0.0);
    }

    #[test]
    fn activities_stay_in_unit_range() {
        for phase in [PhaseKind::Prompt, PhaseKind::Token, PhaseKind::Idle] {
            for s in series(phase, 500) {
                let v = s.as_vec();
                assert!(v[0] >= 0.0);
                for x in &v[1..] {
                    assert!((0.0..=1.0).contains(x), "{phase:?}: {x}");
                }
            }
        }
    }
}
