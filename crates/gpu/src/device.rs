//! The stateful GPU device: clocks, caps, brake, power draw.

use std::fmt;

use crate::capping::CapController;
use crate::dvfs::DvfsModel;
use crate::spec::GpuSpec;

/// Error returned when a requested SM clock is outside the device range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockError {
    requested_mhz: f64,
    min_mhz: f64,
    max_mhz: f64,
}

impl fmt::Display for ClockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "requested SM clock {} MHz outside supported range {}-{} MHz",
            self.requested_mhz, self.min_mhz, self.max_mhz
        )
    }
}

impl std::error::Error for ClockError {}

/// Error returned when a requested power cap is outside the device range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerCapError {
    requested_watts: f64,
    min_watts: f64,
    max_watts: f64,
}

impl fmt::Display for PowerCapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "requested power cap {} W outside supported range {}-{} W",
            self.requested_watts, self.min_watts, self.max_watts
        )
    }
}

impl std::error::Error for PowerCapError {}

/// One simulated GPU.
///
/// The device exposes the paper's three control knobs:
///
/// * **frequency locking** ([`lock_clock`](Gpu::lock_clock)) — immediate,
///   constantly active, lowers power everywhere (Insight 3/7),
/// * **power capping** ([`set_power_cap`](Gpu::set_power_cap)) — reactive,
///   spikes escape (Figure 9b),
/// * **power brake** ([`set_power_brake`](Gpu::set_power_brake)) — forces
///   288 MHz, "brings all GPUs down to almost a halt" (§3.2).
///
/// Power draw is `idle + (transient_peak − idle) · intensity ·
/// power_scale(clock_ratio)`, where `intensity ∈ [0, 1]` comes from the
/// workload model (1.0 = prompt-phase tensor burst).
#[derive(Debug, Clone, PartialEq)]
pub struct Gpu {
    spec: GpuSpec,
    dvfs: DvfsModel,
    locked_clock_mhz: Option<f64>,
    cap: Option<CapController>,
    brake: bool,
    last_power_watts: f64,
}

impl Gpu {
    /// Creates a GPU in its default state: no lock, cap at TDP-equivalent
    /// disabled, brake off.
    pub fn new(spec: GpuSpec) -> Self {
        Gpu {
            last_power_watts: spec.idle_watts,
            spec,
            dvfs: DvfsModel::default(),
            locked_clock_mhz: None,
            cap: None,
            brake: false,
        }
    }

    /// Creates a GPU with a custom DVFS model (for ablations).
    pub fn with_dvfs(spec: GpuSpec, dvfs: DvfsModel) -> Self {
        Gpu {
            last_power_watts: spec.idle_watts,
            spec,
            dvfs,
            locked_clock_mhz: None,
            cap: None,
            brake: false,
        }
    }

    /// The device constants.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// The DVFS scaling model.
    pub fn dvfs(&self) -> &DvfsModel {
        &self.dvfs
    }

    /// Locks the SM clock to `mhz` (the `nvidia-smi -lgc` knob).
    ///
    /// # Errors
    ///
    /// Returns [`ClockError`] if `mhz` is outside the device range.
    pub fn lock_clock(&mut self, mhz: f64) -> Result<(), ClockError> {
        if !self.spec.clock_in_range(mhz) {
            return Err(ClockError {
                requested_mhz: mhz,
                min_mhz: self.spec.min_sm_clock_mhz,
                max_mhz: self.spec.max_sm_clock_mhz,
            });
        }
        self.locked_clock_mhz = Some(mhz);
        Ok(())
    }

    /// Removes the frequency lock.
    pub fn unlock_clock(&mut self) {
        self.locked_clock_mhz = None;
    }

    /// The currently locked clock, if any.
    pub fn locked_clock_mhz(&self) -> Option<f64> {
        self.locked_clock_mhz
    }

    /// Sets a power cap (the `nvidia-smi -pl` knob).
    ///
    /// # Errors
    ///
    /// Returns [`PowerCapError`] if `watts` is outside the configurable
    /// range.
    pub fn set_power_cap(&mut self, watts: f64) -> Result<(), PowerCapError> {
        if !(self.spec.min_power_cap_watts..=self.spec.transient_peak_watts).contains(&watts) {
            return Err(PowerCapError {
                requested_watts: watts,
                min_watts: self.spec.min_power_cap_watts,
                max_watts: self.spec.transient_peak_watts,
            });
        }
        self.cap = Some(CapController::new(&self.spec, watts));
        Ok(())
    }

    /// Removes the power cap.
    pub fn clear_power_cap(&mut self) {
        self.cap = None;
    }

    /// The configured power cap in watts, if any.
    pub fn power_cap_watts(&self) -> Option<f64> {
        self.cap.as_ref().map(CapController::cap_watts)
    }

    /// Engages or releases the power brake.
    pub fn set_power_brake(&mut self, on: bool) {
        self.brake = on;
    }

    /// Whether the power brake is engaged.
    pub fn power_brake(&self) -> bool {
        self.brake
    }

    /// The SM clock the device actually runs at right now, in MHz: the
    /// minimum of the lock, the cap controller's limit, and the brake.
    pub fn effective_clock_mhz(&self) -> f64 {
        if self.brake {
            return self.spec.power_brake_clock_mhz();
        }
        let mut clock = self.locked_clock_mhz.unwrap_or(self.spec.max_sm_clock_mhz);
        if let Some(cap) = &self.cap {
            clock = clock.min(cap.limit_mhz());
        }
        clock
    }

    /// The effective clock as a fraction of the maximum clock.
    pub fn clock_ratio(&self) -> f64 {
        self.effective_clock_mhz() / self.spec.max_sm_clock_mhz
    }

    /// Instantaneous power draw at the given workload `intensity`
    /// (`0.0..=1.0`) and the current effective clock, without advancing
    /// controller state.
    ///
    /// # Panics
    ///
    /// Panics if `intensity` is not in `[0, 1]`.
    pub fn power_at(&self, intensity: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&intensity),
            "intensity must be in [0, 1]"
        );
        let dynamic = self.spec.transient_peak_watts - self.spec.idle_watts;
        self.spec.idle_watts + dynamic * intensity * self.dvfs.power_scale(self.clock_ratio())
    }

    /// Advances the device by `dt` seconds at workload `intensity`,
    /// stepping the reactive cap controller, and returns the power drawn
    /// over the interval.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive or `intensity` not in
    /// `[0, 1]`.
    pub fn advance(&mut self, dt: f64, intensity: f64) -> f64 {
        assert!(dt > 0.0, "dt must be positive");
        let power = self.power_at(intensity);
        if let Some(cap) = &mut self.cap {
            cap.step(dt, power);
        }
        self.last_power_watts = power;
        power
    }

    /// The power measured at the last [`advance`](Gpu::advance) call.
    pub fn last_power_watts(&self) -> f64 {
        self.last_power_watts
    }

    /// The compute-throughput multiplier (≤ 1) the current effective clock
    /// imposes on a phase with compute-bound fraction `c`.
    pub fn perf_scale(&self, compute_fraction: f64) -> f64 {
        self.dvfs
            .perf_scale(self.clock_ratio().max(1e-6), compute_fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::a100_80gb())
    }

    #[test]
    fn default_state_runs_at_max_clock() {
        let g = gpu();
        assert_eq!(g.effective_clock_mhz(), 1410.0);
        assert_eq!(g.clock_ratio(), 1.0);
        assert_eq!(g.locked_clock_mhz(), None);
        assert_eq!(g.power_cap_watts(), None);
        assert!(!g.power_brake());
    }

    #[test]
    fn idle_power_at_zero_intensity() {
        let g = gpu();
        assert_eq!(g.power_at(0.0), 80.0);
    }

    #[test]
    fn full_intensity_exceeds_tdp() {
        let g = gpu();
        assert!(g.power_at(1.0) > g.spec().tdp_watts); // Insight 4 spike
        assert_eq!(g.power_at(1.0), 425.0);
    }

    #[test]
    #[should_panic(expected = "intensity")]
    fn intensity_out_of_range_panics() {
        let _ = gpu().power_at(1.5);
    }

    #[test]
    fn lock_clock_validates_range() {
        let mut g = gpu();
        assert!(g.lock_clock(1110.0).is_ok());
        assert_eq!(g.effective_clock_mhz(), 1110.0);
        let err = g.lock_clock(5000.0).unwrap_err();
        assert!(err.to_string().contains("outside supported range"));
        // Lock unchanged after failed request.
        assert_eq!(g.effective_clock_mhz(), 1110.0);
        g.unlock_clock();
        assert_eq!(g.effective_clock_mhz(), 1410.0);
    }

    #[test]
    fn frequency_lock_reduces_peak_power_about_twenty_percent() {
        let mut g = gpu();
        let uncapped = g.power_at(1.0);
        g.lock_clock(1110.0).unwrap(); // the paper's 1.1 GHz lock
        let locked = g.power_at(1.0);
        let reduction = 1.0 - locked / uncapped;
        assert!(
            (0.15..=0.30).contains(&reduction),
            "reduction {reduction:.3}"
        );
    }

    #[test]
    fn power_cap_validates_range() {
        let mut g = gpu();
        assert!(g.set_power_cap(325.0).is_ok());
        assert_eq!(g.power_cap_watts(), Some(325.0));
        let err = g.set_power_cap(10.0).unwrap_err();
        assert!(err.to_string().contains("outside supported range"));
        g.clear_power_cap();
        assert_eq!(g.power_cap_watts(), None);
    }

    #[test]
    fn power_cap_is_reactive_spike_escapes_then_clamps() {
        let mut g = gpu();
        g.set_power_cap(325.0).unwrap();
        // First 100 ms spike escapes the cap (Fig 9b)...
        let first = g.advance(0.1, 1.0);
        assert!(first > 325.0, "first sample {first}");
        // ...but sustained load is eventually clamped near the cap.
        let mut last = first;
        for _ in 0..100 {
            last = g.advance(0.1, 1.0);
        }
        assert!(last <= 325.0 * 1.05, "steady-state {last}");
    }

    #[test]
    fn power_brake_overrides_everything() {
        let mut g = gpu();
        g.lock_clock(1300.0).unwrap();
        g.set_power_brake(true);
        assert_eq!(g.effective_clock_mhz(), 288.0);
        // Near-halt power draw even under a prompt burst.
        let p = g.power_at(1.0);
        assert!(p < 0.35 * g.spec().tdp_watts, "brake power {p}");
        g.set_power_brake(false);
        assert_eq!(g.effective_clock_mhz(), 1300.0);
    }

    #[test]
    fn perf_scale_prefers_memory_bound_phases() {
        let mut g = gpu();
        g.lock_clock(1110.0).unwrap();
        // Token (memory-bound) phases barely slow down; prompt
        // (compute-bound) phases slow roughly with clock.
        assert!(g.perf_scale(0.1) > 0.96);
        assert!(g.perf_scale(0.9) < 0.85);
    }

    #[test]
    fn advance_tracks_last_power() {
        let mut g = gpu();
        let p = g.advance(0.1, 0.6);
        assert_eq!(g.last_power_watts(), p);
    }
}
