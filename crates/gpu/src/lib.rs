//! Analytical datacenter GPU model.
//!
//! The paper characterizes LLM power behaviour on NVIDIA A100 GPUs using
//! the in-band knobs `nvidia-smi` exposes (frequency locking, power
//! capping) and the out-of-band SMBPBI knobs (frequency/power capping and
//! the power brake). This crate substitutes the physical GPU with an
//! analytical model that reproduces the *relationships* those experiments
//! measure:
//!
//! * [`GpuSpec`] — device constants (TDP, clock range, memory bandwidth,
//!   peak tensor throughput) for A100-40GB, A100-80GB and H100,
//! * [`DvfsModel`] — power ∝ `clock_ratio^α` scaling and roofline-style
//!   performance slowdown `c/r + (1 − c)` for a phase with compute
//!   fraction `c` (this produces the paper's superlinear
//!   power-vs-performance trade-off, Insight 7),
//! * [`Gpu`] — a stateful device with frequency locking, a *reactive*
//!   power-cap controller (spikes escape it; Figure 9b), and the power
//!   brake (288 MHz, Table 5),
//! * [`counters`] — DCGM-style performance counter samples whose phase
//!   correlations regenerate Figure 7.
//!
//! # Examples
//!
//! ```
//! use polca_gpu::{Gpu, GpuSpec};
//!
//! let mut gpu = Gpu::new(GpuSpec::a100_80gb());
//! // An uncontrolled prompt phase spikes above TDP:
//! let p = gpu.advance(0.1, 1.0);
//! assert!(p > gpu.spec().tdp_watts);
//! // Locking the clock to 1.1 GHz reclaims ~20 % of peak power:
//! gpu.lock_clock(1110.0).unwrap();
//! let p = gpu.advance(0.1, 1.0);
//! assert!(p < 0.87 * gpu.spec().tdp_watts);
//! ```

pub mod capping;
pub mod counters;
pub mod device;
pub mod dvfs;
pub mod spec;

pub use capping::CapController;
pub use counters::{CounterSample, PhaseKind};
pub use device::{ClockError, Gpu, PowerCapError};
pub use dvfs::DvfsModel;
pub use spec::GpuSpec;
