//! Reactive power-cap controller.
//!
//! GPU power capping "limits GPU power consumption to a software-specified
//! value by reactively throttling frequencies" (§3.2). Because the control
//! loop reacts to *measured* power, brief spikes — the prompt phase — can
//! exceed the cap before the controller clamps the clock (Figure 9b,
//! Insight 7). [`CapController`] models that loop as a clock-limit state
//! machine with a finite slew rate.

use crate::spec::GpuSpec;

/// Reactive clock-throttling loop that enforces a power cap.
///
/// Each [`step`](CapController::step) the controller compares the measured
/// power against the cap and slews its internal SM-clock limit down (when
/// over) or up (when comfortably under, with a relax margin to avoid
/// oscillation). The slew rate is finite, so short spikes escape — the
/// defining difference from frequency locking.
#[derive(Debug, Clone, PartialEq)]
pub struct CapController {
    cap_watts: f64,
    limit_mhz: f64,
    min_mhz: f64,
    max_mhz: f64,
    /// MHz per second the controller can move the limit.
    slew_mhz_per_s: f64,
    /// Fraction below the cap at which the controller starts raising the
    /// clock limit again.
    relax_margin: f64,
}

impl CapController {
    /// Default controller slew rate: the A100 firmware converges within a
    /// few hundred milliseconds, i.e. ~3 GHz/s over a 1.2 GHz range.
    pub const DEFAULT_SLEW_MHZ_PER_S: f64 = 3000.0;

    /// Creates a controller for `spec` enforcing `cap_watts`.
    ///
    /// # Panics
    ///
    /// Panics if the cap is below the device's minimum configurable cap or
    /// above its transient peak.
    pub fn new(spec: &GpuSpec, cap_watts: f64) -> Self {
        assert!(
            cap_watts >= spec.min_power_cap_watts,
            "cap below device minimum"
        );
        assert!(
            cap_watts <= spec.transient_peak_watts,
            "cap above device transient peak"
        );
        CapController {
            cap_watts,
            limit_mhz: spec.max_sm_clock_mhz,
            min_mhz: spec.min_sm_clock_mhz,
            max_mhz: spec.max_sm_clock_mhz,
            slew_mhz_per_s: Self::DEFAULT_SLEW_MHZ_PER_S,
            relax_margin: 0.03,
        }
    }

    /// Overrides the controller slew rate (MHz/s).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn with_slew_rate(mut self, rate: f64) -> Self {
        assert!(rate > 0.0, "slew rate must be positive");
        self.slew_mhz_per_s = rate;
        self
    }

    /// The enforced cap in watts.
    pub fn cap_watts(&self) -> f64 {
        self.cap_watts
    }

    /// The controller's current SM-clock limit in MHz.
    pub fn limit_mhz(&self) -> f64 {
        self.limit_mhz
    }

    /// Advances the control loop by `dt` seconds given the power measured
    /// over that interval, returning the new clock limit.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn step(&mut self, dt: f64, measured_watts: f64) -> f64 {
        assert!(dt > 0.0, "dt must be positive");
        let budget = self.slew_mhz_per_s * dt;
        if measured_watts > self.cap_watts {
            // Throttle proportionally to the overshoot, bounded by slew.
            let overshoot = (measured_watts - self.cap_watts) / self.cap_watts;
            let step = (budget * (overshoot * 10.0).min(1.0)).max(budget * 0.1);
            self.limit_mhz = (self.limit_mhz - step).max(self.min_mhz);
        } else if measured_watts < self.cap_watts * (1.0 - self.relax_margin) {
            // Relax fast when far below the cap (communication dips should
            // not stay throttled — Insight 3's "troughs untouched"), but
            // gently when close to it to avoid hunting.
            let gap = (self.cap_watts - measured_watts) / self.cap_watts;
            let step = budget * (gap * 2.0).min(1.0);
            self.limit_mhz = (self.limit_mhz + step).min(self.max_mhz);
        }
        self.limit_mhz
    }

    /// Resets the clock limit to the device maximum (cap removed and
    /// re-armed).
    pub fn reset(&mut self) {
        self.limit_mhz = self.max_mhz;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a100() -> GpuSpec {
        GpuSpec::a100_80gb()
    }

    #[test]
    fn starts_at_max_clock() {
        let ctrl = CapController::new(&a100(), 325.0);
        assert_eq!(ctrl.limit_mhz(), 1410.0);
        assert_eq!(ctrl.cap_watts(), 325.0);
    }

    #[test]
    #[should_panic(expected = "below device minimum")]
    fn cap_below_minimum_rejected() {
        let _ = CapController::new(&a100(), 50.0);
    }

    #[test]
    #[should_panic(expected = "above device transient peak")]
    fn cap_above_peak_rejected() {
        let _ = CapController::new(&a100(), 500.0);
    }

    #[test]
    fn throttles_when_over_cap() {
        let mut ctrl = CapController::new(&a100(), 325.0);
        let before = ctrl.limit_mhz();
        ctrl.step(0.1, 420.0);
        assert!(ctrl.limit_mhz() < before);
    }

    #[test]
    fn relaxes_when_well_under_cap() {
        let mut ctrl = CapController::new(&a100(), 325.0);
        // Drive it down…
        for _ in 0..20 {
            ctrl.step(0.1, 420.0);
        }
        let throttled = ctrl.limit_mhz();
        assert!(throttled < 1410.0);
        // …then let it recover.
        for _ in 0..50 {
            ctrl.step(0.1, 200.0);
        }
        assert!(ctrl.limit_mhz() > throttled);
        assert!(ctrl.limit_mhz() <= 1410.0);
    }

    #[test]
    fn holds_inside_relax_band() {
        let mut ctrl = CapController::new(&a100(), 325.0);
        for _ in 0..10 {
            ctrl.step(0.1, 420.0);
        }
        let limit = ctrl.limit_mhz();
        // Measured power just under the cap (within the 3 % margin):
        ctrl.step(0.1, 320.0);
        assert_eq!(ctrl.limit_mhz(), limit, "controller should hold, not hunt");
    }

    #[test]
    fn limit_never_leaves_device_range() {
        let spec = a100();
        let mut ctrl = CapController::new(&spec, 150.0);
        for _ in 0..10_000 {
            ctrl.step(0.01, 425.0);
        }
        assert!(ctrl.limit_mhz() >= spec.min_sm_clock_mhz);
        for _ in 0..10_000 {
            ctrl.step(0.01, 0.0);
        }
        assert!(ctrl.limit_mhz() <= spec.max_sm_clock_mhz);
    }

    #[test]
    fn short_spike_escapes_cap() {
        // A 100 ms spike cannot pull the clock limit all the way down:
        // the controller's slew is finite, so the spike escapes (Fig 9b).
        let mut ctrl = CapController::new(&a100(), 325.0);
        ctrl.step(0.1, 425.0);
        assert!(
            ctrl.limit_mhz() > 1000.0,
            "one spike sample should not fully throttle (limit {})",
            ctrl.limit_mhz()
        );
    }

    #[test]
    fn reset_restores_max() {
        let mut ctrl = CapController::new(&a100(), 325.0);
        for _ in 0..20 {
            ctrl.step(0.1, 425.0);
        }
        ctrl.reset();
        assert_eq!(ctrl.limit_mhz(), 1410.0);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_rejected() {
        let mut ctrl = CapController::new(&a100(), 325.0);
        ctrl.step(0.0, 300.0);
    }
}
