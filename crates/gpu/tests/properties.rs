//! Property-based tests for the GPU model.

use proptest::prelude::*;

use polca_gpu::{CapController, DvfsModel, Gpu, GpuSpec};

fn specs() -> impl Strategy<Value = GpuSpec> {
    prop_oneof![
        Just(GpuSpec::a100_80gb()),
        Just(GpuSpec::a100_40gb()),
        Just(GpuSpec::h100_80gb()),
    ]
}

proptest! {
    #[test]
    fn power_is_monotone_in_intensity(spec in specs(), i1 in 0.0..=1.0f64, i2 in 0.0..=1.0f64) {
        let gpu = Gpu::new(spec);
        let (lo, hi) = if i1 <= i2 { (i1, i2) } else { (i2, i1) };
        prop_assert!(gpu.power_at(lo) <= gpu.power_at(hi) + 1e-9);
    }

    #[test]
    fn power_is_monotone_in_clock(spec in specs(), intensity in 0.0..=1.0f64, m1 in 0.0..1.0f64, m2 in 0.0..1.0f64) {
        let clock = |frac: f64, spec: &GpuSpec| {
            spec.min_sm_clock_mhz + frac * (spec.max_sm_clock_mhz - spec.min_sm_clock_mhz)
        };
        let (lo, hi) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
        let mut slow = Gpu::new(spec.clone());
        slow.lock_clock(clock(lo, &spec)).unwrap();
        let mut fast = Gpu::new(spec);
        fast.lock_clock(clock(hi, slow.spec())).unwrap();
        prop_assert!(slow.power_at(intensity) <= fast.power_at(intensity) + 1e-9);
    }

    #[test]
    fn power_never_exceeds_transient_peak_nor_drops_below_idle(spec in specs(), intensity in 0.0..=1.0f64, brake in any::<bool>()) {
        let mut gpu = Gpu::new(spec);
        gpu.set_power_brake(brake);
        let p = gpu.power_at(intensity);
        prop_assert!(p >= gpu.spec().idle_watts - 1e-9);
        prop_assert!(p <= gpu.spec().transient_peak_watts + 1e-9);
    }

    #[test]
    fn dvfs_slowdown_is_at_least_one(r in 0.01..=1.0f64, c in 0.0..=1.0f64, alpha in 1.0..3.0f64) {
        let m = DvfsModel::new(alpha);
        prop_assert!(m.slowdown(r, c) >= 1.0 - 1e-12);
        prop_assert!(m.perf_scale(r, c) <= 1.0 + 1e-12);
    }

    #[test]
    fn dvfs_power_scale_is_superlinear_and_bounded(r in 0.0..=1.0f64, alpha in 1.0..3.0f64) {
        let m = DvfsModel::new(alpha);
        let s = m.power_scale(r);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!(s <= r + 1e-12, "power must fall at least as fast as clock");
    }

    #[test]
    fn cap_controller_limit_stays_in_device_range(
        cap in 150.0..420.0f64,
        measurements in prop::collection::vec(0.0..425.0f64, 1..200),
    ) {
        let spec = GpuSpec::a100_80gb();
        let mut ctrl = CapController::new(&spec, cap);
        for m in measurements {
            let limit = ctrl.step(0.1, m);
            prop_assert!(limit >= spec.min_sm_clock_mhz);
            prop_assert!(limit <= spec.max_sm_clock_mhz);
        }
    }

    #[test]
    fn sustained_overload_converges_below_cap(cap in 200.0..400.0f64) {
        let spec = GpuSpec::a100_80gb();
        let mut gpu = Gpu::new(spec);
        gpu.set_power_cap(cap).unwrap();
        let mut last = 0.0;
        for _ in 0..200 {
            last = gpu.advance(0.1, 1.0);
        }
        prop_assert!(last <= cap * 1.05, "steady power {last} vs cap {cap}");
    }

    #[test]
    fn brake_always_wins_over_locks(spec in specs(), frac in 0.0..1.0f64) {
        let mut gpu = Gpu::new(spec);
        let clock = gpu.spec().min_sm_clock_mhz
            + frac * (gpu.spec().max_sm_clock_mhz - gpu.spec().min_sm_clock_mhz);
        gpu.lock_clock(clock).unwrap();
        gpu.set_power_brake(true);
        prop_assert_eq!(gpu.effective_clock_mhz(), gpu.spec().power_brake_clock_mhz());
        gpu.set_power_brake(false);
        prop_assert_eq!(gpu.effective_clock_mhz(), clock);
    }
}
