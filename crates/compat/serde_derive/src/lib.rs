//! Offline stand-in for `serde_derive`.
//!
//! Emits the marker-trait impls for the in-tree `serde` facade. The
//! parser is deliberately tiny (no `syn`/`quote`, which are registry
//! crates): it scans the item's token stream for the `struct`/`enum`
//! keyword and takes the following identifier as the type name.
//! Generic types are rejected with a compile error — every annotated
//! type in this workspace is concrete, and the real serde_derive can be
//! swapped back in if that changes.

use proc_macro::{TokenStream, TokenTree};

/// Finds the name of the `struct`/`enum` item and whether it has
/// generic parameters.
fn type_name(input: &TokenStream) -> Result<String, String> {
    let mut tokens = input.clone().into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            // Skip outer attributes: `#` followed by a bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Ident(id) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" {
                    let name = match tokens.next() {
                        Some(TokenTree::Ident(name)) => name.to_string(),
                        other => {
                            return Err(format!("expected a type name after `{kw}`, got {other:?}"))
                        }
                    };
                    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
                        return Err(format!(
                            "the in-tree serde_derive stand-in does not support generic type \
                             `{name}`; add a manual marker impl or restore the real serde"
                        ));
                    }
                    return Ok(name);
                }
                // `pub`, `pub(crate)`, doc idents inside attributes, …
            }
            _ => {}
        }
    }
    Err("no `struct` or `enum` item found".to_string())
}

fn emit(input: TokenStream, template: fn(&str) -> String) -> TokenStream {
    match type_name(&input) {
        Ok(name) => template(&name).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

/// Derives the `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit(input, |name| {
        format!("impl ::serde::Serialize for {name} {{}}")
    })
}

/// Derives the `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit(input, |name| {
        format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
    })
}
