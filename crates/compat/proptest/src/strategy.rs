//! The `Strategy` trait and the core strategy combinators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real proptest there is no value tree or shrinking; a
/// strategy is just a deterministic sampler over a [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// An empty union; sampling panics until an arm is added.
    pub fn empty() -> Self {
        Union {
            options: Vec::new(),
        }
    }

    /// Adds an arm.
    pub fn or(mut self, strat: impl Strategy<Value = T> + 'static) -> Self {
        self.options.push(Box::new(strat));
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(
            !self.options.is_empty(),
            "prop_oneof! needs at least one arm"
        );
        let idx = rng.int_in(0, self.options.len() as i128 - 1) as usize;
        self.options[idx].sample(rng)
    }
}

/// Types with a canonical default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// The strategy behind `any::<bool>()`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! arbitrary_full_range_int {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Arbitrary for $ty {
                type Strategy = RangeInclusive<$ty>;
                fn arbitrary() -> RangeInclusive<$ty> {
                    <$ty>::MIN..=<$ty>::MAX
                }
            }
        )*
    };
}
arbitrary_full_range_int!(u8, u16, u32, i8, i16, i32, usize);

macro_rules! int_range_strategy {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.int_in(self.start as i128, self.end as i128 - 1) as $ty
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    rng.int_in(*self.start() as i128, *self.end() as i128) as $ty
                }
            }
        )*
    };
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let x = self.start + rng.next_f64() * (self.end - self.start);
        if x >= self.end {
            self.end.next_down().max(self.start)
        } else {
            x
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty range strategy");
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let x = self.start + rng.next_f64() as f32 * (self.end - self.start);
        x.min(self.end.next_down()).max(self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident / $idx:tt),+)),* $(,)?) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5),
);
