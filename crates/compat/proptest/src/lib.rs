//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The workspace builds on machines with no crates.io access, so the
//! real proptest cannot be fetched. This crate reimplements the subset
//! of its API that the polca test suites use — the `proptest!` macro,
//! `prop_assert*`, range/`Just`/tuple/`vec`/`option`/`oneof`
//! strategies, `any::<T>()`, and `ProptestConfig::with_cases` — on top
//! of a small deterministic RNG.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its case number and seed;
//!   cases are fully deterministic (seeded from the test path and case
//!   index), so failures reproduce exactly on re-run.
//! * **Uniform sampling only.** No bias toward boundary values.
//! * `PROPTEST_CASES` overrides the default case count (256), matching
//!   the real crate's environment knob.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// The conventional glob import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced strategy constructors (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::strategy;
    }
}

/// Declares deterministic property tests.
///
/// Supports the same surface the polca suites use:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn my_property(x in 0.0..1.0f64, n in 1usize..10) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = { $cfg }; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = { $crate::test_runner::Config::default() };
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = { $cfg:expr };
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let __path = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(__path, __case);
                    $(let $pat =
                        $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        ::std::panic!(
                            "property `{}` failed at case {}/{}: {}",
                            __path, __case, __config.cases, __msg
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::from(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current property case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current property case unless the operands compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

/// Uniform choice between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let union = $crate::strategy::Union::empty();
        $(let union = union.or($strat);)+
        union
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_samples_every_arm() {
        let s = prop_oneof![Just(1u64), Just(2u64), Just(3u64)];
        let mut rng = TestRng::for_case("union", 0);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(s.sample(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        let s = crate::collection::vec(0.0..1.0f64, 1..10);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_round_trip(x in 0.0..1.0f64, n in 1usize..5, b in any::<bool>()) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..5).contains(&n));
            prop_assert_eq!(b as u8 <= 1, true);
        }

        #[test]
        fn vec_and_option_strategies(
            xs in prop::collection::vec(0u64..10, 0..20),
            o in prop::option::of(1.0..2.0f64),
        ) {
            prop_assert!(xs.len() < 20);
            prop_assert!(xs.iter().all(|&x| x < 10));
            if let Some(v) = o {
                prop_assert!((1.0..2.0).contains(&v));
            }
        }

        #[test]
        fn mapped_tuples(pair in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair < 19, "sum {} out of range", pair);
        }
    }
}
