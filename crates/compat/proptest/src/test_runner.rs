//! Deterministic case generation for the in-tree proptest stand-in.

/// Per-run configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    /// 256 cases, overridable with the `PROPTEST_CASES` environment
    /// variable (matching the real crate).
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Config { cases }
    }
}

/// The error a failing property case returns (carried by
/// `prop_assert!`); a plain message in this stand-in.
pub type TestCaseError = String;

/// A deterministic per-case RNG (SplitMix64).
///
/// Seeded from the test's module path and the case index, so every
/// case reproduces exactly across runs and machines.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The RNG for case `case` of the test at `path`.
    pub fn for_case(path: &str, case: u32) -> Self {
        // FNV-1a over the path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in path.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[lo, hi]` (inclusive).
    pub fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        let scaled = ((self.next_u64() as u128) * span) >> 64;
        lo + scaled as i128
    }
}
