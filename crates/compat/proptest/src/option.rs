//! Option strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy producing `Some` from `inner` three times out of four and
/// `None` otherwise (the real crate's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// The result of [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64() % 4 == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}
