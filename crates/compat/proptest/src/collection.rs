//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy producing `Vec`s of values from `element` with a length
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// The result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
