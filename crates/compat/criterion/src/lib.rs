//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The workspace builds on machines with no crates.io access, so the
//! real criterion cannot be fetched. This crate keeps the `benches/`
//! targets compiling and *useful*: each `bench_function` runs a short
//! warm-up, then a fixed number of timed iterations, and prints the
//! mean/min wall-clock time per iteration. There is no statistical
//! analysis, HTML report, or baseline comparison.
//!
//! Knobs:
//!
//! * `CRITERION_SAMPLES` — timed iterations per benchmark (default 10,
//!   or the group's `sample_size`).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark context handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` as a named benchmark with the default sample count.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, default_samples(), &mut f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            prefix: name.to_string(),
            samples: default_samples(),
        }
    }
}

/// A named collection of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    prefix: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs `f` as a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.prefix, name), self.samples, &mut f);
        self
    }

    /// Finishes the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Drives the closure under measurement.
pub struct Bencher {
    samples: usize,
    /// Mean and minimum iteration time recorded by the last `iter`.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Times `routine`, running one warm-up iteration plus the sample
    /// count of measured iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.result = Some((total / self.samples as u32, min));
    }
}

fn default_samples() -> usize {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
        .max(1)
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((mean, min)) => {
            println!("bench {name:<45} mean {mean:>12.3?}  min {min:>12.3?}  ({samples} samples)")
        }
        None => println!("bench {name:<45} (no iter() call)"),
    }
}

/// Declares a group function that runs the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups (CLI arguments from
/// `cargo bench` are accepted and ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn groups_apply_sample_size() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| black_box(0)));
        g.finish();
    }
}
