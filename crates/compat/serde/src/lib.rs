//! Offline stand-in for the `serde` facade.
//!
//! This workspace builds on machines with no crates.io access, so the
//! real `serde` cannot be fetched. The polca crates use Serde purely as
//! a *capability marker* (the C-SERDE API guideline: result and config
//! types are tagged serializable so downstream tooling can pick a
//! format crate); nothing in-tree performs format-driven serialization
//! through Serde itself — the observability layer in `polca-obs` writes
//! its JSON/CSV artifacts by hand.
//!
//! Accordingly this crate provides just enough surface for those
//! derives and bounds to compile and mean something:
//!
//! * [`Serialize`] and [`Deserialize`] marker traits,
//! * a `derive` feature re-exporting `#[derive(Serialize, Deserialize)]`
//!   from the in-tree `serde_derive`, which emits the marker impls.
//!
//! Swapping the real serde back in (on a networked machine) is a
//! one-line change in the workspace `Cargo.toml` and requires no source
//! edits.

/// Marker for types that can be serialized.
///
/// The in-tree stand-in carries no methods; the derive attests that the
/// type is plain data (fields are themselves `Serialize`-able by
/// construction in this workspace) so a real serde can take over
/// without code changes.
pub trait Serialize {}

/// Marker for types that can be deserialized from borrowed data with
/// lifetime `'de`.
pub trait Deserialize<'de>: Sized {}

/// Marker for types deserializable from any lifetime (mirrors serde's
/// blanket-owned convenience bound).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Serialize for $ty {}
            impl<'de> Deserialize<'de> for $ty {}
        )*
    };
}

impl_markers!(
    (),
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String,
);

impl Serialize for str {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize + ?Sized> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}

macro_rules! impl_tuple_markers {
    ($(($($name:ident),+)),* $(,)?) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {}
            impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {}
        )*
    };
}

impl_tuple_markers!((A), (A, B), (A, B, C), (A, B, C, D));

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::HashMap<K, V>
{
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_serialize<T: Serialize + ?Sized>() {}
    fn assert_deserialize<T: for<'de> Deserialize<'de>>() {}

    #[test]
    fn primitive_markers_exist() {
        assert_serialize::<f64>();
        assert_serialize::<Vec<u64>>();
        assert_serialize::<Option<String>>();
        assert_serialize::<(f64, u64)>();
        assert_deserialize::<Vec<f64>>();
        assert_deserialize::<String>();
    }
}
