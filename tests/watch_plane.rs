//! Watch-plane guarantees (ISSUE 3 acceptance criteria):
//!
//! * watching is *passive* — attaching a [`WatchPlane`] must leave the
//!   simulation's outcomes and event log bit-identical,
//! * the plane fires off *delayed* telemetry only, so every incident
//!   carries a nonzero detection lag attributable to the 2 s row-power
//!   propagation delay (Table 2),
//! * ground truth annotates incidents but can never open one,
//! * with a fixed seed the incident log is byte-identical across runs
//!   and pinned by a golden file for a seeded brake storm.

use polca::{OversubscriptionStudy, PolicyKind, PolicyOutcome, SloTargets};
use polca_cluster::{
    ClusterSim, ControlRequest, ControlTarget, NoopController, PowerController, Priority, Request,
    RowConfig, RowContext, SimConfig,
};
use polca_obs::{ObsLevel, Recorder};
use polca_sim::SimTime;
use polca_telemetry::{ControlAction, RowPowerTaps};
use polca_watch::{BurnConfig, RuleSet, Severity, WatchArtifacts, WatchConfig, WatchPlane};
use proptest::prelude::*;

fn t(s: f64) -> SimTime {
    SimTime::from_secs(s)
}

/// The 4-server variant of the paper inference row used by the
/// cluster-sim unit tests: 2 low-priority servers, 2 high.
fn small_row() -> RowConfig {
    let mut row = RowConfig::paper_inference_row();
    row.base_servers = 4;
    row
}

/// Runs the quick-demo study under POLCA with `recorder`, optionally
/// with a watch plane attached to the OOB taps and the obs event
/// stream.
fn run_study(
    seed: u64,
    recorder: Recorder,
    watch: bool,
) -> (PolicyOutcome, Recorder, Option<WatchArtifacts>) {
    let mut study = OversubscriptionStudy::quick_demo(seed);
    study.set_recorder(recorder.clone());
    let plane = if watch {
        let plane = WatchPlane::new(WatchConfig::new(study.row().provisioned_watts()));
        let mut taps = RowPowerTaps::new();
        plane.attach(&mut taps, &recorder);
        study.set_oob_taps(taps);
        Some(plane)
    } else {
        None
    };
    let days = study.days();
    let outcome = study.run(PolicyKind::Polca, 0.30, 1.0);
    recorder.clear_tap();
    let artifacts = plane.map(|p| p.finalize(SimTime::from_days(days)));
    (outcome, recorder, artifacts)
}

fn assert_outcomes_identical(a: &PolicyOutcome, b: &PolicyOutcome) {
    assert_eq!(a.kind, b.kind);
    assert_eq!(a.brake_engagements, b.brake_engagements);
    assert_eq!(a.counts, b.counts);
    assert_eq!(a.commands_issued, b.commands_issued);
    for (qa, qb) in [
        (&a.low_normalized, &b.low_normalized),
        (&a.high_normalized, &b.high_normalized),
        (&a.low_raw, &b.low_raw),
        (&a.high_raw, &b.high_raw),
    ] {
        assert_eq!(qa.count, qb.count);
        assert_eq!(qa.p50, qb.p50);
        assert_eq!(qa.p90, qb.p90);
        assert_eq!(qa.p99, qb.p99);
        assert_eq!(qa.min, qb.min);
        assert_eq!(qa.max, qb.max);
        assert_eq!(qa.mean, qb.mean);
    }
    assert_eq!(a.peak_utilization, b.peak_utilization);
    assert_eq!(a.mean_utilization, b.mean_utilization);
    assert_eq!(a.low_throughput_norm, b.low_throughput_norm);
    assert_eq!(a.high_throughput_norm, b.high_throughput_norm);
    assert_eq!(a.slo.met, b.slo.met);
    assert_eq!(a.row_power.values(), b.row_power.values());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Watching is passive: a watched run and an unwatched run of the
    /// same seeded study produce identical outcomes *and* an identical
    /// event log — the plane observes, it never perturbs.
    #[test]
    fn watching_never_perturbs_outcomes(seed in 0u64..1000) {
        let (plain, plain_rec, _) = run_study(seed, Recorder::new(ObsLevel::Full), false);
        let (watched, watched_rec, artifacts) =
            run_study(seed, Recorder::new(ObsLevel::Full), true);
        assert_outcomes_identical(&plain, &watched);
        prop_assert_eq!(
            plain_rec.artifacts().events_jsonl(),
            watched_rec.artifacts().events_jsonl()
        );
        // The plane did observe the run: its burn tracker saw every
        // completed request the recorder logged.
        let artifacts = artifacts.unwrap();
        let watched_total: u64 = artifacts.burn_summaries().iter().map(|s| s.total).sum();
        prop_assert!(watched_total > 0);
    }
}

/// Fixed seed ⇒ byte-identical watch artifacts (incidents.jsonl, the
/// report, the trace annotations) across repeated runs.
#[test]
fn watch_artifacts_are_byte_identical_across_runs() {
    let (_, _, a) = run_study(11, Recorder::new(ObsLevel::Full), true);
    let (_, _, b) = run_study(11, Recorder::new(ObsLevel::Full), true);
    let (a, b) = (a.unwrap(), b.unwrap());
    assert_eq!(a, b);
    assert_eq!(a.incidents_jsonl(), b.incidents_jsonl());
    assert_eq!(a.report_md(), b.report_md());
    assert_eq!(a.annotations().len(), b.annotations().len());
}

/// The headline honesty metric: the watch plane fires off the *delayed*
/// OOB feed, so a power surge is detected exactly one propagation delay
/// (Table 2: 2 s) after ground truth crossed the threshold.
#[test]
fn detection_lag_equals_the_telemetry_propagation_delay() {
    let row = small_row();
    let provisioned = row.provisioned_watts();
    // One zero-hold threshold rule, so the only lag left is the feed's.
    let rules =
        RuleSet::parse("power-up threshold over=0.5 clear=0.45 hold=0s severity=critical").unwrap();
    let config = WatchConfig {
        provisioned_watts: provisioned,
        rules,
        slo: SloTargets::default(),
        burn: BurnConfig::default(),
        escalate_after_alerts: 3,
        resolve_after_s: 300.0,
        energy: None,
    };
    let plane = WatchPlane::new(config);
    let mut sim_config = SimConfig::default();
    sim_config.oob_taps.subscribe(plane.subscriber());
    let delay_s = sim_config.telemetry_delay_s;

    // Saturate all four servers (plus buffers) just before the t=30
    // telemetry tick: truth crosses 50 % at t=30, the delayed view at
    // t=32.
    let reqs: Vec<Request> = (0..8)
        .map(|i| {
            let priority = if i % 2 == 0 {
                Priority::Low
            } else {
                Priority::High
            };
            Request::new(i, t(29.0), 1024, 64, priority)
        })
        .collect();
    let report = ClusterSim::new(row, sim_config, NoopController).run(reqs, t(300.0));
    assert!(
        report.peak_row_watts > 0.5 * provisioned,
        "row never got hot"
    );

    let artifacts = plane.finalize(t(300.0));
    let inc = artifacts
        .incidents()
        .iter()
        .find(|i| i.rule == "power-up")
        .expect("the surge must open an incident");
    assert_eq!(inc.severity, Severity::Critical);
    let lag = inc
        .detection_lag_s
        .expect("truth feed must annotate the lag");
    assert!(lag > 0.0, "detection lag must be nonzero");
    assert_eq!(
        lag, delay_s,
        "with a zero-hold rule the whole lag is the 2 s propagation delay"
    );
}

/// Ground truth is annotation-only: a truth-side excursion that the
/// delayed feed never reports must not open an incident or fire an
/// alert.
#[test]
fn ground_truth_alone_never_fires() {
    let plane = WatchPlane::new(WatchConfig::new(1000.0));
    let sub = plane.subscriber();
    for i in 0..200 {
        let now = t(i as f64 * 2.0);
        // Truth spends 100-300 s far above every threshold...
        let truth = if (50..150).contains(&i) { 990.0 } else { 300.0 };
        sub.on_truth(now, truth);
        // ...but the OOB feed (say, a stuck sensor) keeps reporting calm.
        sub.on_observed(now, 300.0);
    }
    let artifacts = plane.finalize(t(400.0));
    assert!(artifacts.alerts().is_empty(), "{:?}", artifacts.alerts());
    assert!(artifacts.incidents().is_empty());
}

/// A controller that engages the row power brake in three 10 s bursts —
/// the seeded "brake storm" behind the golden incident log.
struct BrakeStorm;

impl PowerController for BrakeStorm {
    fn on_telemetry(
        &mut self,
        now: SimTime,
        _observed: Option<f64>,
        _ctx: &RowContext,
    ) -> Vec<ControlRequest> {
        let s = now.as_secs().round() as u64;
        let on = matches!(s, 60 | 100 | 140);
        let off = matches!(s, 70 | 110 | 150);
        if on || off {
            vec![ControlRequest {
                target: ControlTarget::All,
                action: ControlAction::PowerBrake { on },
            }]
        } else {
            Vec::new()
        }
    }
}

/// Runs the seeded brake storm with the watch plane on both feeds
/// (delayed power via the OOB taps, brake events via the obs tap).
fn run_brake_storm() -> WatchArtifacts {
    let row = small_row();
    let plane = WatchPlane::new(WatchConfig::new(row.provisioned_watts()));
    let recorder = Recorder::new(ObsLevel::Events);
    let mut config = SimConfig {
        recorder: recorder.clone(),
        ..SimConfig::default()
    };
    plane.attach(&mut config.oob_taps, &recorder);
    let _ = ClusterSim::new(row, config, BrakeStorm).run(std::iter::empty(), t(600.0));
    recorder.clear_tap();
    plane.finalize(t(600.0))
}

/// Golden-file pin of the incident log for the seeded brake storm: the
/// default `brake-storm` count rule (k=2 within 300 s) catches the
/// storm with zero detection lag (brake events are not delayed), and
/// the incident escalates and mitigates deterministically. Regenerate
/// deliberately (and review the postmortem diff) if the format or the
/// lifecycle semantics change.
#[test]
fn brake_storm_incident_log_matches_golden_file() {
    let a = run_brake_storm();
    let b = run_brake_storm();
    assert_eq!(
        a.incidents_jsonl(),
        b.incidents_jsonl(),
        "incident log must be byte-identical under a fixed seed"
    );
    assert!(
        a.incidents().iter().any(|i| i.rule == "brake-storm"),
        "incidents: {}",
        a.incidents_jsonl()
    );
    let golden = include_str!("golden/incidents.jsonl");
    assert_eq!(a.incidents_jsonl(), golden);
    // The postmortem names the storm and accounts for every incident.
    let report = a.report_md();
    assert!(report.contains("brake-storm"), "{report}");
    assert!(report.starts_with("# Watch report"), "{report}");
}
