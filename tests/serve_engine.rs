//! Serving-engine guarantees (ISSUE 7 acceptance criteria):
//!
//! * the legacy engine is *untouched* — `EngineKind::Legacy` (the
//!   default) reproduces the pre-serve event log byte-for-byte at a
//!   fixed seed, and selecting it explicitly changes nothing,
//! * the batched engine inherits the determinism contract — same seed
//!   ⇒ byte-identical `events.jsonl`, and the four-policy panel is
//!   byte-identical at `jobs=1` and `jobs=4`,
//! * the full POLCA policy comparison runs end-to-end on the batched
//!   engine, with KV occupancy, batch size, and per-pool power visible
//!   in the obs metrics and the serve prof counters populated.

use polca::{
    DisaggregationConfig, OversubscriptionStudy, PolcaPolicy, PolicyKind, TraceEvaluation,
};
use polca_cluster::{EngineKind, Priority, Request, RowConfig};
use polca_obs::{ObsLevel, ProfCounter, Recorder};
use polca_sim::SimTime;
use proptest::prelude::*;

/// Runs the quick-demo study under POLCA on the given engine.
fn run_quick(seed: u64, engine: Option<EngineKind>) -> (polca::PolicyOutcome, Recorder) {
    let recorder = Recorder::new(ObsLevel::Full);
    let mut study = OversubscriptionStudy::quick_demo(seed);
    study.set_recorder(recorder.clone());
    if let Some(engine) = engine {
        study.set_engine(engine);
    }
    (study.run(PolicyKind::Polca, 0.30, 1.0), recorder)
}

/// The aggregated batched engine built from the §5.2 constants.
fn batched() -> EngineKind {
    DisaggregationConfig::default().batched_engine(false)
}

/// Golden-file pin of the legacy engine: the exact `polca-cli evaluate
/// --days 0.02 --seed 17` event log committed before the serve engine
/// existed. Any drift here means the default engine's behavior changed
/// — which the engine flag exists to prevent.
#[test]
fn legacy_engine_reproduces_the_pre_serve_event_log() {
    let recorder = Recorder::new(ObsLevel::Full);
    let mut study = OversubscriptionStudy::new(
        RowConfig::paper_inference_row(),
        PolcaPolicy::default(),
        0.02,
        17,
    );
    study.set_record_power(false);
    study.set_recorder(recorder.clone());
    let _ = study.run(PolicyKind::Polca, 0.30, 1.0);
    let golden = include_str!("golden/legacy_events.jsonl");
    assert_eq!(recorder.artifacts().events_jsonl(), golden);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The default engine IS the legacy engine: never touching
    /// `set_engine` and selecting `EngineKind::Legacy` explicitly give
    /// byte-identical event logs and equal outcomes at any seed.
    #[test]
    fn legacy_is_the_default_engine(seed in 0u64..1000) {
        let (a, rec_a) = run_quick(seed, None);
        let (b, rec_b) = run_quick(seed, Some(EngineKind::Legacy));
        prop_assert_eq!(a.counts, b.counts);
        prop_assert_eq!(a.brake_engagements, b.brake_engagements);
        prop_assert_eq!(a.peak_utilization, b.peak_utilization);
        let (a, b) = (rec_a.artifacts(), rec_b.artifacts());
        prop_assert!(!a.events.is_empty());
        prop_assert_eq!(a.events_jsonl(), b.events_jsonl());
        prop_assert_eq!(a.metrics_json(), b.metrics_json());
    }

    /// The batched engine honors the determinism contract: same seed ⇒
    /// byte-identical artifacts, run to run.
    #[test]
    fn batched_engine_event_log_is_deterministic(seed in 0u64..1000) {
        let (o1, rec1) = run_quick(seed, Some(batched()));
        let (o2, rec2) = run_quick(seed, Some(batched()));
        prop_assert_eq!(o1.counts, o2.counts);
        prop_assert!(o1.counts.1 > 0, "batched engine completed nothing");
        let (a, b) = (rec1.artifacts(), rec2.artifacts());
        prop_assert!(!a.events.is_empty());
        prop_assert_eq!(a.events_jsonl(), b.events_jsonl());
        prop_assert_eq!(a.metrics_json(), b.metrics_json());
        prop_assert_eq!(a.metrics_prometheus(), b.metrics_prometheus());
    }
}

fn burst_requests(n: u64, gap_s: f64) -> Vec<Request> {
    (0..n)
        .map(|i| {
            Request::new(
                i,
                SimTime::from_secs(i as f64 * gap_s),
                1200,
                400,
                if i % 2 == 0 {
                    Priority::High
                } else {
                    Priority::Low
                },
            )
        })
        .collect()
}

/// The four-policy replay panel on the batched engine is byte-identical
/// at `jobs=1` and `jobs=4` — parallel scheduling stays invisible.
#[test]
fn batched_panel_is_jobs_invariant() {
    let run = |jobs: usize| {
        let recorder = Recorder::new(ObsLevel::Full);
        let mut row = RowConfig::paper_inference_row();
        row.base_servers = 20;
        let mut eval =
            TraceEvaluation::new(row, PolcaPolicy::default(), burst_requests(300, 1.5), 3);
        eval.set_engine(batched());
        eval.set_recorder(recorder.clone());
        (eval.run_all(jobs), recorder)
    };
    let (seq, rec_seq) = run(1);
    let (par, rec_par) = run(4);
    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.counts, b.counts);
        assert!(a.counts.1 > 0, "{:?} completed nothing", a.kind);
        assert_eq!(a.commands_issued, b.commands_issued);
        assert_eq!(a.low_normalized.p99, b.low_normalized.p99);
        assert_eq!(a.high_normalized.p99, b.high_normalized.p99);
        assert_eq!(a.peak_utilization, b.peak_utilization);
    }
    let (a, b) = (rec_seq.artifacts(), rec_par.artifacts());
    assert!(!a.events.is_empty());
    assert_eq!(a.events_jsonl(), b.events_jsonl());
    assert_eq!(a.metrics_json(), b.metrics_json());
}

/// The full POLCA policy comparison runs end-to-end on the batched
/// engine, and the serve plane is observable: KV occupancy, batch
/// size, and pool power land in the metrics, the serve phases and
/// counters in the profile.
#[test]
fn polca_policy_comparison_runs_on_the_batched_engine() {
    for kind in PolicyKind::all() {
        let recorder = Recorder::new(ObsLevel::Full);
        let mut study = OversubscriptionStudy::quick_demo(11);
        study.set_recorder(recorder.clone());
        study.set_engine(batched());
        let o = study.run(kind, 0.30, 1.0);
        assert_eq!(o.kind, kind);
        assert!(o.counts.1 > 0, "{kind:?} completed nothing");
        let prom = recorder.artifacts().metrics_prometheus();
        assert!(prom.contains("serve_kv_occupancy"), "{kind:?}: {prom}");
        assert!(prom.contains("serve_batch_size"), "{kind:?}");
        assert!(
            prom.contains("serve_pool_power_w{tag=\"aggregated\"}"),
            "{kind:?}"
        );
        let snap = recorder.prof().snapshot();
        assert!(snap.counter(ProfCounter::ServePeakBatch) > 0, "{kind:?}");
        assert!(snap.counter(ProfCounter::ServeKvPeakBlocks) > 0, "{kind:?}");
    }
}

/// Split pools run the same comparison with per-pool power split into
/// prefill and decode gauges.
#[test]
fn split_pools_expose_per_pool_power() {
    let recorder = Recorder::new(ObsLevel::Full);
    let mut study = OversubscriptionStudy::quick_demo(11);
    study.set_recorder(recorder.clone());
    study.set_engine(DisaggregationConfig::default().batched_engine(true));
    let o = study.run(PolicyKind::Polca, 0.30, 1.0);
    assert!(o.counts.1 > 0, "split pools completed nothing");
    let prom = recorder.artifacts().metrics_prometheus();
    assert!(
        prom.contains("serve_pool_power_w{tag=\"prefill\"}"),
        "{prom}"
    );
    assert!(
        prom.contains("serve_pool_power_w{tag=\"decode\"}"),
        "{prom}"
    );
}
