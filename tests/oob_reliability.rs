//! Integration tests for §3.3's control-plane reliability challenges:
//! POLCA must degrade gracefully — never unsafely — when OOB capping
//! commands silently vanish.

use polca::{PolcaController, PolcaPolicy};
use polca_cluster::{ClusterSim, RowConfig, SimConfig};
use polca_sim::SimTime;
use polca_trace::replicate::{production_reference, ProductionReplicator};
use polca_trace::{ArrivalGenerator, TraceConfig, WorkloadClass};

fn run_with_failure_rate(failure_rate: f64) -> polca_cluster::SimReport {
    let days = 1.0;
    let base_row = RowConfig::paper_inference_row();
    let profile = production_reference(&base_row, days, 60.0, 41);
    let replicator = ProductionReplicator::new(&base_row, &WorkloadClass::table6());
    let schedule = replicator
        .schedule_from_profile(&profile)
        .expect("synthesized profile is well-formed")
        .scaled(1.3);
    let until = SimTime::from_days(days);
    let trace = TraceConfig {
        seed: 41,
        horizon: until,
        schedule,
        mix: WorkloadClass::table6(),
    };
    let config = SimConfig {
        seed: 41,
        oob_failure_rate: failure_rate,
        record_power_series: false,
        ..SimConfig::default()
    };
    ClusterSim::new(
        base_row.with_added_servers(0.30),
        config,
        PolcaController::new(PolcaPolicy::default()),
    )
    .run(ArrivalGenerator::new(&trace), until)
}

#[test]
fn polca_survives_a_lossy_control_plane() {
    // Even at 20 % silent command loss the cluster keeps serving and the
    // (reliable) brake keeps the row at or near the provisioned limit.
    let report = run_with_failure_rate(0.20);
    assert!(report.completed > 0);
    let peak_util = report.peak_row_watts / RowConfig::paper_inference_row().provisioned_watts();
    assert!(
        peak_util < 1.06,
        "row power ran away under command loss: {peak_util:.3}"
    );
}

#[test]
fn command_loss_is_fail_safe() {
    // The dual-threshold design degrades safely under silent losses: a
    // lost UNCAP leaves a server capped (lower power), and a lost CAP
    // gets a second chance at the T2 escalation. Containment therefore
    // never collapses — peaks stay at or below the clean run's, and the
    // brake does not fire more.
    let clean = run_with_failure_rate(0.0);
    let lossy = run_with_failure_rate(0.40);
    assert!(
        lossy.peak_row_watts <= clean.peak_row_watts * 1.02,
        "lossy peak {} vs clean {}",
        lossy.peak_row_watts,
        clean.peak_row_watts
    );
    assert!(
        lossy.brake_engagements <= clean.brake_engagements + 1,
        "lossy brakes {} vs clean {}",
        lossy.brake_engagements,
        clean.brake_engagements
    );
    // Fewer commands reach the devices, by construction.
    assert!(lossy.commands_issued <= clean.commands_issued);
}
