//! Integration tests for §6.4's trace-replication methodology: the
//! synthetic request trace must regenerate the reference power series
//! within 3 % MAPE, through the full simulator.

use polca_cluster::{ClusterSim, NoopController, RowConfig, SimConfig};
use polca_sim::SimTime;
use polca_trace::replicate::{production_reference, replication_mape, ProductionReplicator};
use polca_trace::{ArrivalGenerator, TraceConfig, WorkloadClass};

#[test]
fn full_day_replication_meets_the_three_percent_mape_bound() {
    let row = RowConfig::paper_inference_row();
    let reference = production_reference(&row, 1.0, 60.0, 29);
    let replicator = ProductionReplicator::new(&row, &WorkloadClass::table6());
    let schedule = replicator
        .schedule_from_profile(&reference)
        .expect("synthesized reference is well-formed");
    let config = TraceConfig {
        seed: 29,
        horizon: SimTime::from_days(1.0),
        schedule,
        mix: WorkloadClass::table6(),
    };
    let report = ClusterSim::new(row, SimConfig::default(), NoopController)
        .run(ArrivalGenerator::new(&config), SimTime::from_days(1.0));
    // Skip the half-hour fill-up transient.
    let sim = report.row_power.slice_time(1800.0, f64::INFINITY);
    let reference = reference.slice_time(1800.0, f64::INFINITY);
    let err = replication_mape(&reference, &sim).expect("overlapping series");
    assert!(err < 3.0, "MAPE {err:.2}% exceeds the paper's 3% bound");
}

#[test]
fn replicated_cluster_matches_table4_inference_statistics() {
    let row = RowConfig::paper_inference_row();
    let provisioned = row.provisioned_watts();
    let reference = production_reference(&row, 2.0, 60.0, 31);
    let replicator = ProductionReplicator::new(&row, &WorkloadClass::table6());
    let schedule = replicator
        .schedule_from_profile(&reference)
        .expect("synthesized reference is well-formed");
    let config = TraceConfig {
        seed: 31,
        horizon: SimTime::from_days(2.0),
        schedule,
        mix: WorkloadClass::table6(),
    };
    let report = ClusterSim::new(row, SimConfig::default(), NoopController)
        .run(ArrivalGenerator::new(&config), SimTime::from_days(2.0));
    // Table 4, inference column: high-but-not-full peak utilization …
    let peak_util = report.peak_row_watts / provisioned;
    assert!(
        (0.70..0.90).contains(&peak_util),
        "peak utilization {peak_util:.3}"
    );
    // … leaving substantial oversubscription headroom (~20 %, Insight 9) …
    assert!(1.0 - peak_util > 0.10, "headroom {:.3}", 1.0 - peak_util);
    // … with modest short-term swings compared to training.
    let spike2 = report.row_power.max_rise_within(2.0).unwrap() / provisioned;
    let spike40 = report.row_power.max_rise_within(40.0).unwrap() / provisioned;
    assert!(spike2 < 0.15, "2 s spike {spike2:.3}");
    assert!(spike40 < 0.20, "40 s spike {spike40:.3}");
    assert!(spike40 >= spike2);
}

#[test]
fn inference_headroom_dwarfs_training_headroom() {
    // Insight 9 in one assertion pair.
    use polca_cluster::TrainingCluster;

    let training = TrainingCluster::paper_training_row();
    let t_series = training.row_power_series(300.0, 0.1, 7);
    let training_headroom = 1.0 - t_series.peak().unwrap() / training.provisioned_watts();

    let row = RowConfig::paper_inference_row();
    let reference = production_reference(&row, 1.0, 60.0, 7);
    let inference_headroom = 1.0 - reference.peak().unwrap() / row.provisioned_watts();

    assert!(training_headroom < 0.08, "training {training_headroom:.3}");
    assert!(
        inference_headroom > 0.15,
        "inference {inference_headroom:.3}"
    );
    assert!(inference_headroom > 3.0 * training_headroom);
}
