//! polca-energy guarantees (ISSUE 10 acceptance criteria):
//!
//! * the energy/carbon ledger is observation, not intervention:
//!   attaching an [`EnergyPlan`] leaves outcomes and `events.jsonl`
//!   byte-identical on both engines, at any seed,
//! * `energy.json` and `energy.csv` are byte-identical at
//!   `--fleet-threads 1` and `K`: rows accumulate on their own
//!   telemetry grids and the ledger assembles in canonical row order,
//! * conservation: site busy energy upper-bounds the sum of joules
//!   attributed to individual requests, on both engines,
//! * the bundled 24 h grid-intensity trace round-trips exactly
//!   through `CarbonTrace::{from_csv_str, to_csv}` and samples with
//!   hold-and-wrap semantics,
//! * the `energy_*` / `carbon_*` Prometheus exposition of a known
//!   ledger is pinned byte-for-byte against a golden file.

use polca::{
    DisaggregationConfig, OversubscriptionStudy, PolcaController, PolcaPolicy, PolicyKind,
};
use polca_cluster::{EngineKind, Request, RowConfig, SiteConfig, SiteSim};
use polca_obs::{
    CarbonSignal, CarbonTrace, EnergyLedger, EnergyPlan, ObsLevel, Recorder, ReqTraceConfig,
    RowEnergy,
};
use polca_sim::SimTime;
use polca_trace::{ArrivalGenerator, TraceConfig};
use proptest::prelude::*;

/// The aggregated batched engine built from the §5.2 constants.
fn batched() -> EngineKind {
    DisaggregationConfig::default().batched_engine(false)
}

/// Runs the quick-demo study under POLCA on the given engine, with or
/// without the energy/carbon ledger attached.
fn run_quick(seed: u64, engine: EngineKind, energy: bool) -> (polca::PolicyOutcome, Recorder) {
    let mut recorder = Recorder::new(ObsLevel::Full);
    if energy {
        recorder = recorder.with_energy(EnergyPlan::new(CarbonSignal::diurnal_default()));
    }
    let mut study = OversubscriptionStudy::quick_demo(seed);
    study.set_recorder(recorder.clone());
    study.set_engine(engine);
    (study.run(PolicyKind::Polca, 0.30, 1.0), recorder)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Tentpole invariant: energy accounting on/off is invisible to
    /// the simulation — same outcomes, byte-identical event log, on
    /// both engines. The accumulator only reads telemetry the sim
    /// already produces.
    #[test]
    fn energy_ledger_is_outcome_and_event_invariant(seed in 0u64..1000) {
        for engine in [EngineKind::Legacy, batched()] {
            let (off, rec_off) = run_quick(seed, engine.clone(), false);
            let (on, rec_on) = run_quick(seed, engine.clone(), true);
            prop_assert_eq!(off.counts, on.counts);
            prop_assert_eq!(off.brake_engagements, on.brake_engagements);
            prop_assert_eq!(off.peak_utilization, on.peak_utilization);
            prop_assert_eq!(off.low_normalized.p99, on.low_normalized.p99);
            prop_assert_eq!(off.high_normalized.p99, on.high_normalized.p99);
            let (a, b) = (rec_off.artifacts(), rec_on.artifacts());
            prop_assert!(!a.events.is_empty());
            prop_assert_eq!(a.events_jsonl(), b.events_jsonl());
            // The ledger actually accumulated something.
            prop_assert!(a.energy_ledger().is_empty());
            let ledger = b.energy_ledger();
            prop_assert!(!ledger.is_empty());
            prop_assert!(ledger.site.it_wh > 0.0);
            prop_assert!(ledger.site.co2e_g > 0.0);
        }
    }
}

/// A dense 20-minute synthetic arrival stream over a small row.
fn arrivals(seed: u64) -> Vec<Request> {
    let config = TraceConfig::paper_mix(seed, SimTime::from_mins(20.0)).scaled(0.1);
    ArrivalGenerator::new(&config).collect()
}

/// One full 2 × 2-datacenter site run at `threads` workers with the
/// energy ledger attached (per-datacenter PUEs, tight enforced budgets
/// so brakes fire mid-run), absorbed in canonical row order exactly as
/// the CLI fleet path does.
fn run_energy_site(seed: u64, threads: usize) -> EnergyLedger {
    let plan = EnergyPlan::new(CarbonSignal::diurnal_default()).with_pue(&[1.2, 1.4]);
    let recorder = Recorder::new(ObsLevel::Metrics).with_energy(plan);
    let mut row = RowConfig::paper_inference_row();
    row.base_servers = 6;
    let mut site = SiteConfig {
        datacenters: 2,
        rows_per_datacenter: 2,
        rows_per_pdu: 2,
        pdu_budget_watts: Some(row.provisioned_watts() * 1.1),
        datacenter_budget_watts: Some(row.provisioned_watts() * 1.4),
        site_budget_watts: Some(row.provisioned_watts() * 2.6),
        enforce_budgets: true,
        threads,
        ..SiteConfig::default()
    };
    site.base.seed = seed;
    site.base.recorder = recorder.clone();
    let policy = PolcaPolicy::default();
    let report = SiteSim::new(
        row,
        site,
        |_, rec| PolcaController::new(policy.clone()).with_recorder(rec.clone()),
        arrivals(seed).into_iter(),
        SimTime::from_secs(20.0 * 60.0 + 600.0),
    )
    .run();
    for rec in &report.row_recorders {
        recorder.absorb_energy(rec);
    }
    recorder.artifacts().energy_ledger()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The worker-pool schedule is invisible in the energy artifacts:
    /// `energy.json` and `energy.csv` are byte-identical between
    /// sequential and 3-thread stepping, at any seed.
    #[test]
    fn energy_artifacts_are_thread_invariant(seed in 0u64..500) {
        let (a, b) = (run_energy_site(seed, 1), run_energy_site(seed, 3));
        prop_assert_eq!(a.to_json(), b.to_json());
        prop_assert_eq!(a.series_csv(), b.series_csv());
        // Shape sanity: 4 rows rolled up into 2 datacenters with the
        // configured per-datacenter PUEs.
        prop_assert_eq!(a.rows.len(), 4);
        prop_assert_eq!(a.datacenters.len(), 2);
        prop_assert_eq!(a.datacenters[0].2, 1.2);
        prop_assert_eq!(a.datacenters[1].2, 1.4);
        prop_assert!(a.site.facility_wh > a.site.it_wh);
    }
}

/// Conservation, on both engines: the site's busy energy (exact
/// event-resolution integral of busy server draw) upper-bounds the sum
/// of joules attributed to individual requests — attribution divides
/// busy watts among resident requests and unattributed busy time
/// (draining batches, idle-but-hot servers) only adds to the left side.
#[test]
fn busy_energy_bounds_attributed_request_joules() {
    for engine in [EngineKind::Legacy, batched()] {
        let recorder = Recorder::new(ObsLevel::Full)
            .with_req_trace(ReqTraceConfig { sample: 1 })
            .with_energy(EnergyPlan::new(CarbonSignal::Constant(400.0)));
        let mut study = OversubscriptionStudy::quick_demo(11);
        study.set_recorder(recorder.clone());
        study.set_engine(engine.clone());
        let outcome = study.run(PolicyKind::Polca, 0.30, 1.0);
        assert!(outcome.counts.1 > 0);

        let run = recorder.artifacts();
        let attributed_j: f64 = run.requests.iter().map(|r| r.joules).sum();
        assert!(attributed_j > 0.0, "{engine:?}: no joules attributed");
        let busy_j = run.energy_ledger().site.busy_wh * 3600.0;
        assert!(
            attributed_j <= busy_j * (1.0 + 1e-9),
            "{engine:?}: attributed {attributed_j} J > busy {busy_j} J"
        );
        // And busy energy is itself bounded by the IT account.
        assert!(busy_j <= run.energy_ledger().site.it_wh * 3600.0 * (1.0 + 1e-9));
    }
}

/// The bundled 24 h grid-intensity trace round-trips byte-for-byte,
/// and samples with the documented hold-and-wrap semantics.
#[test]
fn golden_carbon_trace_round_trips() {
    let csv = include_str!("golden/carbon_intensity_24h.csv");
    let trace = CarbonTrace::from_csv_str(csv).expect("golden trace parses");
    assert_eq!(trace.len(), 24);
    assert_eq!(trace.to_csv(), csv);
    assert_eq!(trace.span_s(), 86_400.0);
    // Sample-and-hold within the hour, wrap across the day boundary.
    assert_eq!(trace.g_per_kwh(0.0), 352.0);
    assert_eq!(trace.g_per_kwh(1800.0), 352.0);
    assert_eq!(trace.g_per_kwh(19.0 * 3600.0 + 60.0), 482.0);
    assert_eq!(trace.g_per_kwh(86_400.0 + 3600.5), 344.0);
}

/// A ledger with known contents, covering two datacenters with
/// distinct PUEs, both priority classes, and both pools.
fn known_ledger() -> EnergyLedger {
    let row0 = RowEnergy {
        row: 0,
        pdu: 0,
        dc: 0,
        pue: 1.2,
        horizon_s: 3600.0,
        it_wh: 100.0,
        busy_wh: 80.0,
        facility_wh: 120.0,
        co2e_g: 48.0,
        wh_low: 40.0,
        wh_high: 60.0,
        pool_wh: vec![("decode", 70.0), ("prefill", 30.0)],
        tokens_low: 1000,
        tokens_high: 3000,
        samples: Vec::new(),
    };
    let row1 = RowEnergy {
        row: 1,
        pdu: 1,
        dc: 1,
        pue: 1.5,
        horizon_s: 3600.0,
        it_wh: 200.0,
        busy_wh: 150.0,
        facility_wh: 300.0,
        co2e_g: 120.0,
        wh_low: 120.0,
        wh_high: 80.0,
        pool_wh: vec![("decode", 140.0), ("prefill", 60.0)],
        tokens_low: 5000,
        tokens_high: 1000,
        samples: Vec::new(),
    };
    // Deliberately out of order: assembly sorts into canonical order.
    EnergyLedger::from_rows(&[row1, row0])
}

/// The `energy_*` / `carbon_*` Prometheus exposition is pinned
/// byte-for-byte, so dashboards never silently drift.
#[test]
fn energy_prometheus_matches_golden() {
    let actual = known_ledger().prometheus();
    let golden = include_str!("golden/energy_metrics.prom");
    assert_eq!(
        actual, golden,
        "energy Prometheus exposition drifted from tests/golden/energy_metrics.prom;\nactual:\n{actual}"
    );
}

/// Rollup arithmetic of the known ledger: site totals are the sums,
/// per-token rates divide through, and the class/pool splits survive
/// assembly.
#[test]
fn known_ledger_rolls_up_exactly() {
    let ledger = known_ledger();
    assert_eq!(ledger.rows.len(), 2);
    assert_eq!(ledger.rows[0].row, 0, "rows not in canonical order");
    assert_eq!(ledger.site.it_wh, 300.0);
    assert_eq!(ledger.site.busy_wh, 230.0);
    assert_eq!(ledger.site.facility_wh, 420.0);
    assert_eq!(ledger.site.co2e_g, 168.0);
    assert_eq!(ledger.site.tokens, 10_000);
    assert_eq!(ledger.site.joules_per_token(), 300.0 * 3600.0 / 10_000.0);
    assert_eq!(ledger.site.co2e_g_per_token(), 168.0 / 10_000.0);
    assert_eq!(ledger.wh_low, 160.0);
    assert_eq!(ledger.wh_high, 140.0);
    assert_eq!(ledger.pool_wh, vec![("decode", 210.0), ("prefill", 90.0)]);
    assert_eq!(ledger.datacenters.len(), 2);
    assert_eq!(ledger.datacenters[0].1.facility_wh, 120.0);
    assert_eq!(ledger.datacenters[1].1.facility_wh, 300.0);
}
