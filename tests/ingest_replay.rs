//! Integration tests for the real-trace ingestion subsystem:
//! generate → export → ingest → replay round-trips, the bundled
//! Azure-schema sample, and the Figure 17 policy comparison on a
//! replayed (rather than synthesized) trace.

use std::path::Path;

use polca::{PolcaController, PolcaPolicy, PolicyKind, TraceEvaluation};
use polca_cluster::{ClusterSim, RowConfig, SimConfig};
use polca_ingest::{
    requests_to_csv, IngestedTrace, ReplayOptions, TraceCalibration, TraceReplay, TraceStats,
};
use polca_obs::{ObsLevel, Recorder};
use polca_sim::{SimRng, SimTime};
use polca_trace::{ArrivalGenerator, DiurnalPattern, RateSchedule, TraceConfig, WorkloadClass};

fn synthetic_requests(seed: u64, horizon_s: f64, rate: f64) -> Vec<polca_cluster::Request> {
    let config = TraceConfig {
        seed,
        horizon: SimTime::from_secs(horizon_s),
        schedule: RateSchedule::constant(rate, horizon_s),
        mix: WorkloadClass::table6(),
    };
    ArrivalGenerator::new(&config).collect()
}

fn sample_path() -> &'static Path {
    Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/sample_trace.csv"
    ))
}

/// The PR's acceptance bar: exporting a seeded synthetic trace to CSV
/// and replaying it through `RequestSource` yields a byte-identical
/// `events.jsonl` versus running the generator directly.
#[test]
fn replayed_trace_reproduces_the_generator_run_byte_for_byte() {
    let requests = synthetic_requests(7, 1_800.0, 1.5);
    let until = SimTime::from_secs(3_600.0);
    let mut row = RowConfig::paper_inference_row();
    row.base_servers = 20;
    let row = row.with_added_servers(0.30);

    let run = |arrivals: Vec<polca_cluster::Request>| {
        let recorder = Recorder::new(ObsLevel::Events);
        let config = SimConfig {
            seed: 7,
            recorder: recorder.clone(),
            record_power_series: false,
            ..SimConfig::default()
        };
        let controller =
            PolcaController::new(PolcaPolicy::default()).with_recorder(recorder.clone());
        let sim = ClusterSim::new(row.clone(), config, controller);
        let report = sim.run(arrivals, until);
        (report, recorder.artifacts().events_jsonl())
    };

    // Direct path: the generator's request stream as-is.
    let (direct_report, direct_events) = run(requests.clone());

    // Round trip: export to Azure-schema CSV, ingest, replay.
    let csv = requests_to_csv(&requests);
    let trace = IngestedTrace::from_reader(csv.as_bytes()).unwrap();
    assert_eq!(trace.skipped_rows(), 0);
    let replayed: Vec<polca_cluster::Request> = TraceReplay::new(&trace).collect();
    assert_eq!(replayed, requests, "request streams must match exactly");
    let (replay_report, replay_events) = run(replayed);

    assert_eq!(direct_report.offered, replay_report.offered);
    assert_eq!(direct_report.completed, replay_report.completed);
    assert!(!direct_events.is_empty());
    assert_eq!(
        direct_events, replay_events,
        "events.jsonl must be byte-identical between generate and replay"
    );
}

/// The bundled sample ingests cleanly and its harmonic fit meets the
/// paper's §6.4 replication bound.
#[test]
fn bundled_sample_calibrates_under_the_mape_bound() {
    let trace = IngestedTrace::from_csv_path(sample_path()).unwrap();
    assert!(trace.len() > 10_000, "sample has {} rows", trace.len());
    assert_eq!(trace.skipped_rows(), 0);
    let stats = TraceStats::from_trace(&trace).unwrap();
    assert!(stats.high_priority_share.is_some());
    assert!(
        (5.9..6.1).contains(&(stats.duration_s / 3600.0)),
        "sample spans {:.2} h",
        stats.duration_s / 3600.0
    );
    let calibration = TraceCalibration::fit_with_stats(&trace, &stats).unwrap();
    assert!(
        calibration.mape_pct < 3.0,
        "replication MAPE {:.2}% breaches the paper bound",
        calibration.mape_pct
    );
    // The generation knobs baked into the sample (rate 1.25, peak 03:00)
    // are recovered by the fit.
    assert!(
        (1.0..1.5).contains(&calibration.pattern.base_rate),
        "base {}",
        calibration.pattern.base_rate
    );
    assert!(
        (2.0..5.0).contains(&calibration.pattern.peak_hour),
        "peak {}",
        calibration.pattern.peak_hour
    );
    assert_eq!(calibration.mix.len(), 2);
}

/// Figure 17 on the replayed sample: POLCA never brakes and
/// high-priority p99 orders POLCA ≤ 1-Thresh-Low-Pri ≤ 1-Thresh-All
/// (ties allowed), with No-cap strictly worst.
#[test]
fn replayed_sample_preserves_fig17_policy_ordering() {
    let trace = IngestedTrace::from_csv_path(sample_path()).unwrap();
    let requests: Vec<_> = TraceReplay::new(&trace).collect();
    let row = RowConfig::paper_inference_row().with_added_servers(0.30);
    let mut eval = TraceEvaluation::new(row, PolcaPolicy::default(), requests, 17);

    let polca = eval.run(PolicyKind::Polca);
    let one_lp = eval.run(PolicyKind::OneThreshLowPri);
    let one_all = eval.run(PolicyKind::OneThreshAll);
    let no_cap = eval.run(PolicyKind::NoCap);

    assert_eq!(polca.brake_engagements, 0, "POLCA must not brake");
    assert!(
        polca.peak_utilization <= 1.0,
        "peak {}",
        polca.peak_utilization
    );
    // Brake ordering (Figure 18): POLCA fewest, No-cap most.
    assert!(polca.brake_engagements <= one_lp.brake_engagements);
    assert!(no_cap.brake_engagements > one_lp.brake_engagements.max(1));
    // High-priority p99, normalized to the un-capped reference. The
    // baselines' brake halts hit high-priority work; POLCA's gentle
    // HP capping does not (tie tolerance covers float noise between
    // the two single-threshold variants).
    let tol = 1e-6;
    assert!(
        polca.high_normalized.p99 <= one_lp.high_normalized.p99 + tol,
        "POLCA HP p99 {} vs 1T-LP {}",
        polca.high_normalized.p99,
        one_lp.high_normalized.p99
    );
    assert!(
        one_lp.high_normalized.p99 <= one_all.high_normalized.p99 + tol,
        "1T-LP HP p99 {} vs 1T-All {}",
        one_lp.high_normalized.p99,
        one_all.high_normalized.p99
    );
    assert!(
        one_all.high_normalized.p99 <= no_cap.high_normalized.p99 + tol,
        "1T-All HP p99 {} vs No-cap {}",
        one_all.high_normalized.p99,
        no_cap.high_normalized.p99
    );
    // Low-priority pays the capping cost but No-cap's brakes cost more.
    assert!(no_cap.low_normalized.p99 > polca.low_normalized.p99);
}

/// The fitted model extrapolates the 6-hour sample to a longer horizon
/// whose generated stream matches the sample's rate and mix.
#[test]
fn sample_extrapolates_to_a_longer_horizon() {
    let trace = IngestedTrace::from_csv_path(sample_path()).unwrap();
    let calibration = TraceCalibration::fit(&trace).unwrap();
    let config = calibration.trace_config(17, SimTime::from_days(2.0));
    let requests: Vec<_> = ArrivalGenerator::new(&config).collect();
    let expected = calibration.pattern.base_rate * 2.0 * 86_400.0;
    let n = requests.len() as f64;
    assert!(
        (n - expected).abs() / expected < 0.15,
        "extrapolated {n} requests, expected ≈{expected:.0}"
    );
    let high = requests
        .iter()
        .filter(|r| r.priority == polca_cluster::Priority::High)
        .count() as f64;
    assert!((high / n - 0.49).abs() < 0.05, "high share {}", high / n);
}

/// Messy real-world CSV: permuted snake_case headers, quoted fields,
/// malformed rows, blank lines — ingestion keeps the good rows and
/// line-numbers the bad ones.
#[test]
fn messy_csv_ingests_with_line_numbered_diagnostics() {
    let csv = "\
generated_tokens,priority,TIMESTAMP,Context Tokens
300,high,2024-05-10 00:00:01.500000,1200
150,low,\"2024-05-10 00:00:02.250000\",800
oops,low,2024-05-10 00:00:03.000000,900

420,,2024-05-10 00:00:04.750000,1500
99,low,not-a-date,700
77,low,2024-05-10 00:00:06.000000,0
";
    let trace = IngestedTrace::from_reader(csv.as_bytes()).unwrap();
    assert_eq!(trace.len(), 3);
    assert_eq!(trace.skipped_rows(), 3);
    assert!(trace.rebased());
    // 2024-05-10 was a Friday; the week phase should say so.
    assert!((trace.week_phase_s() - (4.0 * 86_400.0 + 1.5)).abs() < 1e-6);
    let errors = trace.row_errors();
    assert!(
        errors.iter().any(|e| e.starts_with("line 4:")),
        "{errors:?}"
    );
    assert!(
        errors.iter().any(|e| e.starts_with("line 7:")),
        "{errors:?}"
    );
    assert!(
        errors.iter().any(|e| e.starts_with("line 8:")),
        "{errors:?}"
    );
    // The surviving record with an empty priority field replays with a
    // synthesized priority; the others keep theirs.
    let requests: Vec<_> = TraceReplay::with_options(
        &trace,
        ReplayOptions {
            seed: 3,
            ..ReplayOptions::default()
        },
    )
    .collect();
    assert_eq!(requests.len(), 3);
    assert_eq!(requests[0].arrival, SimTime::from_secs(0.0));
    assert_eq!(requests[1].arrival, SimTime::from_secs(0.75));
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        /// Any seeded synthetic trace survives the CSV round trip with
        /// an identical request stream.
        #[test]
        fn csv_round_trip_is_exact(seed in 0u64..1000) {
            let mut rng = SimRng::from_seed_stream(seed, 0xC5F0);
            let pattern = DiurnalPattern {
                base_rate: 0.5 + (seed % 7) as f64 * 0.25,
                ..DiurnalPattern::default()
            };
            let horizon_s = 1_200.0;
            let config = TraceConfig {
                seed,
                horizon: SimTime::from_secs(horizon_s),
                schedule: pattern.schedule(horizon_s, 60.0, &mut rng),
                mix: WorkloadClass::table6(),
            };
            let requests: Vec<_> = ArrivalGenerator::new(&config).collect();
            prop_assert!(!requests.is_empty());
            let csv = requests_to_csv(&requests);
            let trace = IngestedTrace::from_reader(csv.as_bytes()).unwrap();
            let replayed: Vec<_> = TraceReplay::new(&trace).collect();
            prop_assert_eq!(replayed, requests);
        }
    }
}
