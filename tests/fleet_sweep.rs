//! Fleet-scale refactor guarantees (ISSUE 4 acceptance criteria):
//!
//! * a 1-row [`FleetSim`] is a *bit-identical* re-packaging of the
//!   legacy single-row `ClusterSim` path — same report, same
//!   `events.jsonl` bytes — at any seed,
//! * the deterministic sweep runner produces byte-identical artifacts
//!   (`events.jsonl`, `metrics.json`) and identical outcomes whether
//!   it runs on 1 worker thread or 4.

use polca::{OversubscriptionStudy, PolcaController, PolcaPolicy, PolicyKind};
use polca_cluster::{ClusterSim, FleetConfig, FleetSim, Request, RowConfig, SimConfig};
use polca_obs::{ObsLevel, Recorder};
use polca_sim::SimTime;
use polca_trace::{ArrivalGenerator, TraceConfig};
use proptest::prelude::*;

/// A small row so the proptest cases stay fast.
fn small_row() -> RowConfig {
    let mut row = RowConfig::paper_inference_row();
    row.base_servers = 6;
    row
}

/// A dense 20-minute synthetic arrival stream.
fn arrivals(seed: u64) -> Vec<Request> {
    let config = TraceConfig::paper_mix(seed, SimTime::from_mins(20.0)).scaled(0.1);
    ArrivalGenerator::new(&config).collect()
}

const HORIZON: f64 = 20.0 * 60.0 + 600.0;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Tentpole invariant: wrapping the row engine in a 1-row fleet
    /// changes nothing — not the report, not a single event byte.
    #[test]
    fn one_row_fleet_reproduces_the_legacy_path_bit_for_bit(seed in 0u64..500) {
        let requests = arrivals(seed);
        let until = SimTime::from_secs(HORIZON);
        let policy = PolcaPolicy::default();

        let solo_rec = Recorder::new(ObsLevel::Events);
        let solo_cfg = SimConfig {
            seed,
            recorder: solo_rec.clone(),
            ..SimConfig::default()
        };
        let solo_controller =
            PolcaController::new(policy.clone()).with_recorder(solo_rec.clone());
        let solo = ClusterSim::new(small_row(), solo_cfg, solo_controller)
            .run(requests.clone(), until);

        let mut fleet_cfg = FleetConfig::with_rows(1);
        fleet_cfg.base.seed = seed;
        fleet_cfg.base.recorder = Recorder::new(ObsLevel::Events);
        let fleet = FleetSim::new(
            small_row(),
            fleet_cfg,
            |_, rec| PolcaController::new(policy.clone()).with_recorder(rec.clone()),
            requests.into_iter(),
            until,
        )
        .run();

        let row = &fleet.rows[0];
        prop_assert_eq!(row.offered, solo.offered);
        prop_assert_eq!(row.completed, solo.completed);
        prop_assert_eq!(row.rejected, solo.rejected);
        prop_assert_eq!(&row.low_latencies_s, &solo.low_latencies_s);
        prop_assert_eq!(&row.high_latencies_s, &solo.high_latencies_s);
        prop_assert_eq!(row.peak_row_watts, solo.peak_row_watts);
        prop_assert_eq!(row.mean_row_watts, solo.mean_row_watts);
        prop_assert_eq!(row.brake_engagements, solo.brake_engagements);
        prop_assert_eq!(row.commands_issued, solo.commands_issued);
        prop_assert_eq!(row.events_processed, solo.events_processed);
        // The per-row event log is byte-identical to the solo run's.
        let fleet_events = fleet.row_recorders[0].artifacts().events_jsonl();
        let solo_events = solo_rec.artifacts().events_jsonl();
        prop_assert!(!fleet_events.is_empty());
        prop_assert_eq!(fleet_events, solo_events);
    }

    /// Sweep-runner invariant: `--jobs 4` and `--jobs 1` produce the
    /// same outcomes and byte-identical absorbed artifacts.
    #[test]
    fn parallel_sweep_is_byte_identical_to_sequential(seed in 0u64..500) {
        let cells: Vec<(PolicyKind, f64, f64)> = PolicyKind::all()
            .iter()
            .map(|&kind| (kind, 0.30, 1.0))
            .collect();

        let run = |jobs: usize| {
            let study = OversubscriptionStudy::quick_demo(seed);
            let rec = Recorder::new(ObsLevel::Events);
            let mut study = study;
            study.set_recorder(rec.clone());
            (study.sweep(&cells, jobs), rec)
        };
        let (seq, seq_rec) = run(1);
        let (par, par_rec) = run(4);

        for (a, b) in seq.iter().zip(&par) {
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(a.counts, b.counts);
            prop_assert_eq!(a.brake_engagements, b.brake_engagements);
            prop_assert_eq!(a.commands_issued, b.commands_issued);
            prop_assert_eq!(a.low_normalized.p99, b.low_normalized.p99);
            prop_assert_eq!(a.high_normalized.p99, b.high_normalized.p99);
        }
        let (a, b) = (seq_rec.artifacts(), par_rec.artifacts());
        prop_assert!(!a.events.is_empty());
        prop_assert_eq!(a.events_jsonl(), b.events_jsonl());
        prop_assert_eq!(a.metrics_json(), b.metrics_json());
    }
}
