//! polca-req guarantees (ISSUE 8 acceptance criteria):
//!
//! * request tracing is observation, not intervention: turning it on
//!   leaves outcomes and `events.jsonl` byte-identical on both
//!   engines, at any seed,
//! * `requests.jsonl` is byte-identical at `jobs=1` and `jobs=4` on
//!   the four-policy panel — the per-cell recorders absorb in
//!   canonical order,
//! * preemption/recompute accounting balances: the global
//!   `serve.preemptions` counter equals the sum of preemption
//!   episodes across all request records, and preempted requests
//!   carry a visible recompute penalty,
//! * the per-request joules ledger is consistent with the aggregate
//!   `energy_per_request_wh` estimator on the golden trace,
//! * the per-priority TTFT/TBT/energy histograms render to a pinned
//!   Prometheus exposition.

use polca::{
    CostModel, DisaggregationConfig, OversubscriptionStudy, PolcaPolicy, PolicyKind,
    TraceEvaluation,
};
use polca_cluster::{EngineKind, Priority, Request, RowConfig};
use polca_ingest::{IngestedTrace, ReplayOptions, TraceReplay};
use polca_obs::{
    CarbonSignal, EnergyPlan, ObsLevel, ProfCounter, Recorder, ReqSpan, ReqTraceConfig,
};
use polca_serve::ServeConfig;
use polca_sim::SimTime;
use proptest::prelude::*;

/// The aggregated batched engine built from the §5.2 constants.
fn batched() -> EngineKind {
    DisaggregationConfig::default().batched_engine(false)
}

/// Runs the quick-demo study under POLCA on the given engine, with or
/// without request tracing.
fn run_quick(seed: u64, engine: EngineKind, traced: bool) -> (polca::PolicyOutcome, Recorder) {
    let mut recorder = Recorder::new(ObsLevel::Full);
    if traced {
        recorder = recorder.with_req_trace(ReqTraceConfig::default());
    }
    let mut study = OversubscriptionStudy::quick_demo(seed);
    study.set_recorder(recorder.clone());
    study.set_engine(engine);
    (study.run(PolicyKind::Polca, 0.30, 1.0), recorder)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Request tracing on/off is invisible to the simulation: same
    /// outcomes, byte-identical event log, on both engines. The spans
    /// are write-only from the engines' perspective, and this is the
    /// proof.
    #[test]
    fn req_tracing_is_outcome_and_event_invariant(seed in 0u64..1000) {
        for engine in [EngineKind::Legacy, batched()] {
            let (off, rec_off) = run_quick(seed, engine.clone(), false);
            let (on, rec_on) = run_quick(seed, engine.clone(), true);
            prop_assert_eq!(off.counts, on.counts);
            prop_assert_eq!(off.brake_engagements, on.brake_engagements);
            prop_assert_eq!(off.peak_utilization, on.peak_utilization);
            prop_assert_eq!(off.low_normalized.p99, on.low_normalized.p99);
            prop_assert_eq!(off.high_normalized.p99, on.high_normalized.p99);
            let (a, b) = (rec_off.artifacts(), rec_on.artifacts());
            prop_assert!(!a.events.is_empty());
            prop_assert_eq!(a.events_jsonl(), b.events_jsonl());
            // Tracing actually produced records — one per completion.
            prop_assert!(a.requests.is_empty());
            prop_assert_eq!(b.requests.len() as u64, on.counts.1);
        }
    }
}

fn burst_requests(n: u64, gap_s: f64) -> Vec<Request> {
    (0..n)
        .map(|i| {
            Request::new(
                i,
                SimTime::from_secs(i as f64 * gap_s),
                1200,
                400,
                if i % 2 == 0 {
                    Priority::High
                } else {
                    Priority::Low
                },
            )
        })
        .collect()
}

/// `requests.jsonl` from the four-policy panel is byte-identical at
/// `jobs=1` and `jobs=4`: each cell records into a fresh recorder that
/// inherits the req-trace config, and absorption happens in canonical
/// panel order.
#[test]
fn requests_jsonl_is_jobs_invariant() {
    let run = |jobs: usize| {
        let recorder = Recorder::new(ObsLevel::Full).with_req_trace(ReqTraceConfig::default());
        let mut row = RowConfig::paper_inference_row();
        row.base_servers = 20;
        let mut eval =
            TraceEvaluation::new(row, PolcaPolicy::default(), burst_requests(300, 1.5), 3);
        eval.set_engine(batched());
        eval.set_recorder(recorder.clone());
        let _ = eval.run_all(jobs);
        recorder.artifacts()
    };
    let (a, b) = (run(1), run(4));
    assert!(!a.requests.is_empty());
    assert_eq!(a.requests_jsonl(), b.requests_jsonl());
    assert_eq!(a.events_jsonl(), b.events_jsonl());
}

/// Small requests on a tiny KV pool: sequences fit one at a time, so
/// the pager preempts under pressure and every preemption must be
/// visible in exactly one request's span.
fn kv_pressure_run() -> (Recorder, u64) {
    let recorder = Recorder::new(ObsLevel::Full).with_req_trace(ReqTraceConfig::default());
    let mut row = RowConfig::paper_inference_row();
    row.base_servers = 2;
    let requests: Vec<Request> = (0..40)
        .map(|i| {
            Request::new(
                i,
                SimTime::from_secs(i as f64 * 0.5),
                48,
                40,
                if i % 2 == 0 {
                    Priority::High
                } else {
                    Priority::Low
                },
            )
        })
        .collect();
    let mut eval = TraceEvaluation::new(row, PolcaPolicy::default(), requests, 7);
    eval.set_engine(EngineKind::Batched(ServeConfig {
        kv_blocks: Some(8),
        ..ServeConfig::default()
    }));
    eval.set_recorder(recorder.clone());
    let o = eval.run(PolicyKind::NoCap);
    (recorder, o.counts.1)
}

/// KV exhaustion shows up in the affected requests' spans, and the
/// books balance: `serve.preemptions` equals the number of preemption
/// episodes summed over all request records.
#[test]
fn preemption_episodes_balance_the_global_counter() {
    let (recorder, completed) = kv_pressure_run();
    let run = recorder.artifacts();
    assert_eq!(run.requests.len() as u64, completed);
    let preempted = recorder
        .prof()
        .snapshot()
        .counter(ProfCounter::ServePreemptions);
    assert!(preempted > 0, "tiny KV pool never preempted");
    let episodes: u64 = run.requests.iter().map(|r| u64::from(r.preemptions)).sum();
    assert_eq!(episodes, preempted, "preemption episodes leaked");
    let victim = run
        .requests
        .iter()
        .find(|r| r.preemptions > 0)
        .expect("no preempted request record");
    assert!(victim.recompute_tokens > 0.0, "{victim:?}");
    assert!(victim.recompute_s > 0.0, "{victim:?}");
    // Recompute time is extra prefill work, not decode time.
    assert!(victim.ttft_s >= victim.recompute_s, "{victim:?}");
}

/// Consistency of the two energy views on the golden trace: the
/// aggregate `energy_per_request_wh` estimator spreads the row's mean
/// draw (hot-idle floor + PUE) over completed requests, so it must
/// upper-bound the mean of the attributed per-request ledger — and
/// stay within the idle/facility overhead factor of it.
#[test]
fn aggregate_energy_estimator_bounds_the_req_ledger() {
    let csv = include_str!("golden/sample_trace.csv");
    let trace = IngestedTrace::from_reader(csv.as_bytes()).unwrap();
    let requests: Vec<Request> =
        TraceReplay::with_options(&trace, ReplayOptions::default()).collect();
    let recorder = Recorder::new(ObsLevel::Full)
        .with_req_trace(ReqTraceConfig::default())
        .with_energy(EnergyPlan::new(CarbonSignal::Constant(400.0)));
    let mut row = RowConfig::paper_inference_row();
    row.base_servers = 10;
    let mut eval = TraceEvaluation::new(row.clone(), PolcaPolicy::default(), requests, 17);
    eval.set_engine(batched());
    eval.set_recorder(recorder.clone());
    let o = eval.run(PolicyKind::Polca);
    assert!(o.counts.1 > 0);

    let run = recorder.artifacts();
    assert_eq!(run.requests.len() as u64, o.counts.1);
    let total_joules: f64 = run.requests.iter().map(|r| r.joules).sum();
    let ledger_mean_wh = total_joules / run.requests.len() as f64 / 3600.0;
    assert!(ledger_mean_wh > 0.0);

    let days = eval.horizon().as_secs() / 86_400.0;
    let aggregate_wh = CostModel::default()
        .energy_per_request_wh_raw(o.mean_utilization, o.counts.1, &row, days)
        .unwrap();
    let ratio = aggregate_wh / ledger_mean_wh;
    // The gap is exactly the unattributed overhead: hot-idle floor,
    // idle servers, and the 1.25 PUE factor. It can never dip below
    // 1.0, and on this trace shape it stays well under 10x.
    assert!(
        ratio >= 1.0,
        "aggregate {aggregate_wh} < ledger {ledger_mean_wh}"
    );
    assert!(ratio < 10.0, "overhead factor blew up: {ratio}");

    // With the polca-energy ledger attached to the same run, the
    // *measured* per-request figure (facility Wh over completions)
    // replaces the estimator, and sits between the two views: it
    // includes idle draw and PUE (so it bounds the attributed mean)
    // but spends no margin on the estimator's utilization model.
    let ledger = run.energy_ledger();
    assert!(!ledger.is_empty());
    let measured = CostModel::default()
        .energy_per_request_wh_measured(&ledger, o.counts.1)
        .unwrap();
    assert!(
        measured >= ledger_mean_wh,
        "measured {measured} < attributed mean {ledger_mean_wh}"
    );
    assert!(
        measured <= aggregate_wh * 1.05,
        "measured {measured} blew past estimate {aggregate_wh}"
    );
    // Every record carries the emissions view, stamped with the PUE
    // that was applied: constant 400 g/kWh grid, default 1.25 PUE.
    for r in &run.requests {
        assert!(r.co2e_g > 0.0, "{r:?}");
        assert_eq!(r.pue_applied, 1.25, "{r:?}");
    }
}

/// Golden-file pin of the per-priority request histograms: a
/// hand-built set of records must render exactly as
/// `tests/golden/req_metrics.prom`. Regenerate deliberately if the
/// exposition format or metric names change.
#[test]
fn req_prometheus_matches_golden_file() {
    let recorder = Recorder::new(ObsLevel::Metrics).with_req_trace(ReqTraceConfig::default());
    for i in 0..6u64 {
        let span = ReqSpan {
            first_token_s: Some(2.0 + i as f64),
            last_token_s: Some(8.0 + i as f64),
            tbt_max_s: 0.25,
            prefill_s: 1.5,
            decode_s: 6.0,
            joules: 900.0 + 100.0 * i as f64,
            ..ReqSpan::default()
        };
        let priority = if i % 2 == 0 { "high" } else { "low" };
        let record = span.finish(
            i,
            priority,
            0,
            i as f64,
            1.0 + i as f64,
            9.0 + i as f64,
            512,
            64,
        );
        recorder.record_request(&record);
    }
    let rendered = recorder.artifacts().metrics_prometheus();
    let golden = include_str!("golden/req_metrics.prom");
    assert_eq!(rendered, golden);
    for name in [
        "req_ttft_s",
        "req_tbt_s",
        "req_queue_s",
        "req_joules_per_token",
    ] {
        assert!(rendered.contains(name), "{name} missing:\n{rendered}");
    }
}

/// Sampling thins `requests.jsonl` without touching the histograms:
/// only ids divisible by the stride are stored, but every completion
/// still lands in the per-priority metrics.
#[test]
fn sampling_thins_storage_but_not_histograms() {
    let run = |sample: u64| {
        let recorder = Recorder::new(ObsLevel::Full).with_req_trace(ReqTraceConfig { sample });
        let mut study = OversubscriptionStudy::quick_demo(13);
        study.set_recorder(recorder.clone());
        study.set_engine(batched());
        let _ = study.run(PolicyKind::Polca, 0.30, 1.0);
        recorder.artifacts()
    };
    let full = run(1);
    let thinned = run(4);
    assert!(!full.requests.is_empty());
    assert!(thinned.requests.len() < full.requests.len());
    assert!(thinned.requests.iter().all(|r| r.id % 4 == 0));
    // The histograms saw every record either way.
    assert_eq!(full.metrics_prometheus(), thinned.metrics_prometheus());
}
