//! Compile-time checks that the user-facing configuration and result
//! types implement Serde traits (C-SERDE), so downstream tooling can
//! persist policies and dump experiment outcomes with any format crate.

use polca::{PolcaPolicy, PolicyKind, PolicyOutcome, PowerMode, SloReport, SloTargets};
use polca_cluster::Priority;
use polca_stats::{Quantiles, Summary, TimeSeries};

fn assert_serialize<T: serde::Serialize>() {}
fn assert_deserialize<T: for<'de> serde::Deserialize<'de>>() {}

#[test]
fn result_types_are_serializable() {
    assert_serialize::<Quantiles>();
    assert_serialize::<Summary>();
    assert_serialize::<TimeSeries>();
    assert_serialize::<SloReport>();
    assert_serialize::<PolicyOutcome>();
    assert_serialize::<PolicyKind>();
    assert_serialize::<Priority>();
    assert_serialize::<PowerMode>();
}

#[test]
fn config_types_round_trip() {
    assert_deserialize::<PolcaPolicy>();
    assert_deserialize::<SloTargets>();
    assert_deserialize::<Quantiles>();
    assert_deserialize::<TimeSeries>();
    assert_deserialize::<Priority>();
}

#[test]
fn send_sync_for_cross_thread_experiment_fanout() {
    // C-SEND-SYNC: studies and outcomes can move across threads (e.g.
    // parallel policy sweeps).
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PolcaPolicy>();
    assert_send_sync::<PolicyOutcome>();
    assert_send_sync::<polca::OversubscriptionStudy>();
    assert_send_sync::<polca_cluster::RowConfig>();
}
