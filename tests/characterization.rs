//! Integration tests for the characterization half of the paper
//! (§4): the cross-crate behaviours behind Insights 1–9.

use polca_gpu::{DvfsModel, Gpu, GpuSpec};
use polca_llm::{InferenceConfig, InferenceModel, ModelSpec, TrainingJob};

#[test]
fn insight1_training_peaks_reach_tdp_inference_only_in_prompt() {
    let gpu_spec = GpuSpec::a100_80gb();
    // Training: large models hit/exceed TDP.
    let mut gpu = Gpu::new(gpu_spec.clone());
    let training =
        TrainingJob::fine_tuning(&ModelSpec::gpt_neox_20b()).power_series(&mut gpu, 2, 0.01);
    assert!(training.peak().unwrap() >= gpu_spec.tdp_watts);

    // Inference: BLOOM's big-prompt spike also reaches TDP, but only
    // briefly.
    let bloom = InferenceModel::new(ModelSpec::bloom_176b(), gpu_spec.clone()).unwrap();
    let mut gpu = Gpu::new(gpu_spec.clone());
    let series = bloom.power_series(&InferenceConfig::new(8192, 128, 1), 1, &mut gpu, 0.05);
    assert!(series.peak().unwrap() >= 0.95 * gpu_spec.tdp_watts);
    assert!(series.mean().unwrap() < 0.92 * gpu_spec.tdp_watts);
}

#[test]
fn insight2_training_swings_exceed_inference_swings() {
    let gpu_spec = GpuSpec::a100_80gb();
    let mut gpu = Gpu::new(gpu_spec.clone());
    let training =
        TrainingJob::fine_tuning(&ModelSpec::flan_t5_xxl()).power_series(&mut gpu, 3, 0.01);
    let training_swing = training.peak().unwrap() - training.trough().unwrap();

    let bloom = InferenceModel::new(ModelSpec::bloom_176b(), gpu_spec.clone()).unwrap();
    let mut gpu = Gpu::new(gpu_spec);
    // Steady token-heavy inference; slice off the trailing idle gap the
    // series generator inserts between requests.
    let cfg = InferenceConfig::new(1024, 512, 1);
    let service = bloom.profile(&cfg).total_time_s();
    let inference = bloom
        .power_series(&cfg, 1, &mut gpu, 0.05)
        .slice_time(0.0, service * 0.99);
    let inference_swing = inference.peak().unwrap() - inference.trough().unwrap();
    assert!(
        training_swing > 1.5 * inference_swing,
        "training swing {training_swing:.0} W vs inference {inference_swing:.0} W"
    );
}

#[test]
fn insight3_capping_clips_peaks_locking_lowers_everything() {
    let job = TrainingJob::fine_tuning(&ModelSpec::gpt_neox_20b());
    let mut plain = Gpu::new(GpuSpec::a100_80gb());
    let base = job.power_series(&mut plain, 4, 0.01).resample_mean(0.1);

    let mut capped = Gpu::new(GpuSpec::a100_80gb());
    capped.set_power_cap(325.0).unwrap();
    let cap = job.power_series(&mut capped, 4, 0.01).resample_mean(0.1);

    let mut locked = Gpu::new(GpuSpec::a100_80gb());
    locked.lock_clock(1110.0).unwrap();
    let lock = job.power_series(&mut locked, 4, 0.01).resample_mean(0.1);

    // Capping: peak down, trough held (compare steady-state windows).
    let (b, c) = (base.slice_time(2.0, 8.0), cap.slice_time(2.0, 8.0));
    assert!(c.peak().unwrap() < b.peak().unwrap());
    assert!((c.trough().unwrap() - b.trough().unwrap()).abs() < 20.0);
    // Locking: everything down.
    let l = lock.slice_time(2.0, 8.0);
    assert!(l.peak().unwrap() < b.peak().unwrap());
    assert!(l.mean().unwrap() < b.mean().unwrap());
}

#[test]
fn insight5_request_shape_controls_power_output_controls_latency() {
    let bloom = InferenceModel::new(ModelSpec::bloom_176b(), GpuSpec::a100_80gb()).unwrap();
    let small = bloom.profile(&InferenceConfig::new(256, 256, 1));
    let big_input = bloom.profile(&InferenceConfig::new(8192, 256, 1));
    let big_batch = bloom.profile(&InferenceConfig::new(256, 256, 16));
    let big_output = bloom.profile(&InferenceConfig::new(256, 2048, 1));

    // Peak power: driven by input and batch.
    assert!(big_input.peak_intensity() > small.peak_intensity());
    assert!(big_batch.peak_intensity() > small.peak_intensity());
    assert!((big_output.peak_intensity() - small.peak_intensity()).abs() < 1e-9);
    // Latency: driven by output.
    assert!(big_output.total_time_s() > 4.0 * small.total_time_s());
}

#[test]
fn insight7_superlinear_power_performance_tradeoff() {
    let dvfs = DvfsModel::default();
    let bloom = InferenceModel::new(ModelSpec::bloom_176b(), GpuSpec::a100_80gb()).unwrap();
    let profile = bloom.profile(&InferenceConfig::new(2048, 256, 1));
    let mut gpu = Gpu::new(GpuSpec::a100_80gb());
    let base_peak = gpu.power_at(profile.peak_intensity());
    gpu.lock_clock(1110.0).unwrap();
    let locked_peak = gpu.power_at(profile.peak_intensity());
    let power_reduction = 1.0 - locked_peak / base_peak;
    let perf_loss =
        profile.total_time_at_clock(&dvfs, 1110.0 / 1410.0) / profile.total_time_s() - 1.0;
    assert!(power_reduction > 0.15, "power {power_reduction:.3}");
    assert!(perf_loss < 0.07, "perf {perf_loss:.3}");
    assert!(power_reduction > 2.0 * perf_loss);
}

#[test]
fn insight6_quantization_cuts_gpus_but_not_phase_asymmetry() {
    use polca_llm::DType;
    let gpu = GpuSpec::a100_80gb();
    let model = ModelSpec::llama2_70b();
    let fp16 = InferenceModel::with_dtype(model.clone(), gpu.clone(), DType::Fp16).unwrap();
    let fp32 = InferenceModel::with_dtype(model, gpu, DType::Fp32).unwrap();
    assert!(fp16.n_gpus() * 2 == fp32.n_gpus());
    for deployment in [&fp16, &fp32] {
        let cfg = InferenceConfig::new(2048, 128, 1).with_dtype(deployment.dtype());
        let p = deployment.profile(&cfg);
        assert!(p.prompt.intensity > p.token.intensity);
        assert!(p.prompt.compute_fraction > p.token.compute_fraction);
    }
}

#[test]
fn h100_generation_shifts_but_preserves_the_phase_structure() {
    // §4.2/§6.7: newer GPUs (H100) change the absolute numbers — more
    // throughput, higher TDP, more power density — but the prompt/token
    // asymmetry that drives POLCA persists.
    use polca_cluster::{RowConfig, ServerSpec};

    let a100 = InferenceModel::new(ModelSpec::bloom_176b(), GpuSpec::a100_80gb()).unwrap();
    let h100 = InferenceModel::new(ModelSpec::bloom_176b(), GpuSpec::h100_80gb()).unwrap();
    let cfg = InferenceConfig::new(2048, 256, 1);
    let (pa, ph) = (a100.profile(&cfg), h100.profile(&cfg));
    // Faster in both phases…
    assert!(ph.prompt.duration_s < pa.prompt.duration_s);
    assert!(ph.token.duration_s < pa.token.duration_s);
    // …same phase structure.
    assert!(ph.prompt.intensity > ph.token.intensity);
    assert!(ph.prompt.compute_fraction > 0.8 && ph.token.compute_fraction < 0.1);

    // An H100 row is denser but the oversubscription machinery carries
    // over unchanged.
    let mut row = RowConfig::paper_inference_row();
    row.server_spec = ServerSpec::dgx_h100();
    assert!(row.provisioned_watts() > RowConfig::paper_inference_row().provisioned_watts());
    assert_eq!(row.build_servers().len(), 40);
}

#[test]
fn derating_argument_holds_for_every_workload() {
    // §5: across ALL workloads, server power never exceeds the observed
    // 5.7 kW peak on a 6.5 kW-rated machine.
    use polca_cluster::ServerSpec;
    let spec = ServerSpec::dgx_a100();
    assert!(spec.peak_power_watts() <= 5700.0);
    assert!(spec.provisioned_watts - spec.peak_power_watts() >= 780.0);
}
