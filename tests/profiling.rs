//! polca-prof guarantees (ISSUE 6 acceptance criteria):
//!
//! * profiling is *passive* — enabling the phase profiler must not
//!   perturb simulation outcomes or the deterministic event log (same
//!   seed ⇒ byte-identical `events.jsonl` with profiling on or off),
//! * parallelism is *invisible* to the profile's deterministic subset —
//!   a `--jobs 4` sweep absorbs the same phase call counts, derived
//!   counters, and span counts as the `--jobs 1` sweep,
//! * the Prometheus exposition of the deterministic prof subset has a
//!   stable, golden-file-pinned shape (and never leaks nanoseconds).

use polca::{OversubscriptionStudy, PolicyKind};
use polca_obs::{ObsLevel, Phase, PhaseAgg, ProfCounter, ProfSnapshot, Recorder};
use proptest::prelude::*;

/// Runs the quick-demo study under POLCA with the given recorder.
fn run_with(seed: u64, recorder: Recorder) -> (polca::PolicyOutcome, Recorder) {
    let mut study = OversubscriptionStudy::quick_demo(seed);
    study.set_recorder(recorder.clone());
    (study.run(PolicyKind::Polca, 0.30, 1.0), recorder)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Profiling on (`Full`) vs off (`Events`) is outcome-invariant and
    /// leaves the deterministic event log byte-identical.
    #[test]
    fn profiling_on_off_is_outcome_invariant(seed in 0u64..1000) {
        let (off, rec_off) = run_with(seed, Recorder::new(ObsLevel::Events));
        let (on, rec_on) = run_with(seed, Recorder::new(ObsLevel::Full));

        prop_assert_eq!(off.counts, on.counts);
        prop_assert_eq!(off.brake_engagements, on.brake_engagements);
        prop_assert_eq!(off.commands_issued, on.commands_issued);
        prop_assert_eq!(off.peak_utilization, on.peak_utilization);
        prop_assert_eq!(off.low_normalized.p99, on.low_normalized.p99);
        prop_assert_eq!(off.high_normalized.p99, on.high_normalized.p99);

        let (a, b) = (rec_off.artifacts(), rec_on.artifacts());
        prop_assert!(!a.events.is_empty());
        prop_assert_eq!(a.events_jsonl(), b.events_jsonl());

        // Below Full the profiler is the zero-cost disabled handle;
        // at Full it actually accounted the run.
        prop_assert!(a.prof.is_empty());
        prop_assert!(!b.prof.is_empty());
        prop_assert!(b.prof.get(Phase::RowStep).calls > 0);
        prop_assert!(b.prof.counter(ProfCounter::EventsPopped) > 0);
    }
}

/// The deterministic subset of a sweep's absorbed profile — phase call
/// counts, derived counters, span counts, and the `metrics.prom`
/// rendering — is identical at `jobs=1` and `jobs=4`. Only wall-clock
/// nanoseconds may differ.
#[test]
fn sweep_prof_totals_are_jobs_invariant() {
    let run = |jobs: usize| {
        let mut study = OversubscriptionStudy::quick_demo(7);
        let recorder = Recorder::new(ObsLevel::Full);
        study.set_recorder(recorder.clone());
        let cells: Vec<(PolicyKind, f64, f64)> = PolicyKind::all()
            .iter()
            .flat_map(|&kind| [(kind, 0.20, 1.0), (kind, 0.30, 1.0)])
            .collect();
        (study.sweep(&cells, jobs), recorder)
    };
    let (seq_outcomes, seq_rec) = run(1);
    let (par_outcomes, par_rec) = run(4);

    assert_eq!(seq_outcomes.len(), par_outcomes.len());
    for (a, b) in seq_outcomes.iter().zip(&par_outcomes) {
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.brake_engagements, b.brake_engagements);
        assert_eq!(a.peak_utilization, b.peak_utilization);
    }

    let (seq, par) = (seq_rec.artifacts(), par_rec.artifacts());
    for phase in Phase::ALL {
        assert_eq!(
            seq.prof.get(phase).calls,
            par.prof.get(phase).calls,
            "phase {} call count diverged across jobs",
            phase.name(),
        );
    }
    for counter in ProfCounter::ALL {
        assert_eq!(
            seq.prof.counter(counter),
            par.prof.counter(counter),
            "counter {} diverged across jobs",
            counter.name(),
        );
    }
    // Two distinct oversubscription levels ⇒ exactly two synthesis
    // runs, however the cells were scheduled.
    assert_eq!(seq.prof.counter(ProfCounter::TraceCacheMisses), 2);
    assert_eq!(seq.prof.counter(ProfCounter::TraceCacheHits), 6);

    // Span *counts* are deterministic even though span times are not.
    let seq_spans: Vec<(&str, u64)> = seq.spans.iter().map(|(n, a)| (n, a.count)).collect();
    let par_spans: Vec<(&str, u64)> = par.spans.iter().map(|(n, a)| (n, a.count)).collect();
    assert_eq!(seq_spans, par_spans);

    // And the whole deterministic exposition agrees byte-for-byte.
    assert_eq!(seq.metrics_prometheus(), par.metrics_prometheus());
}

/// A profiled quick-demo run emits well-formed folded stacks and a
/// `prof.json` with the expected sections, while the events-level run
/// emits neither.
#[test]
fn profiled_run_emits_prof_artifacts() {
    let (_, rec) = run_with(11, Recorder::new(ObsLevel::Full));
    let artifacts = rec.artifacts();

    let folded = artifacts.prof_folded();
    assert!(!folded.is_empty());
    for line in folded.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("folded line shape");
        assert!(!stack.is_empty());
        weight.parse::<u64>().expect("folded weight is integer ns");
    }
    // The event loop dominates, and nested phases fold under it.
    assert!(folded.contains("row.step "), "{folded}");
    assert!(folded.contains("row.step;queue.push "), "{folded}");

    let prof_json = artifacts.prof_json();
    assert!(prof_json.contains("\"phases\""), "{prof_json}");
    assert!(prof_json.contains("\"counters\""), "{prof_json}");
    assert!(prof_json.contains("\"row.step\""), "{prof_json}");

    // metrics.prom carries the deterministic prof series at Full…
    let prom = artifacts.metrics_prometheus();
    assert!(prom.contains("# TYPE polca_prof_phase_calls_total counter"));
    assert!(prom.contains("polca_prof_events_popped_total"));

    // …and stays prof-free below Full.
    let (_, rec) = run_with(11, Recorder::new(ObsLevel::Events));
    let prom = rec.artifacts().metrics_prometheus();
    assert!(!prom.contains("polca_prof_"), "{prom}");
}

/// Golden-file pin of the Prometheus exposition for the deterministic
/// prof subset: a hand-built snapshot must render exactly as
/// `tests/golden/prof_metrics.prom`. Nanosecond fields are set to
/// conspicuous values so any wall-clock leak breaks the comparison.
/// Regenerate deliberately if the exposition format changes.
#[test]
fn prof_prometheus_matches_golden_file() {
    let mut snap = ProfSnapshot::default();
    let agg = |calls: u64| PhaseAgg {
        calls,
        total_ns: 5_555_555,
        self_ns: 4_444_444,
        max_ns: 3_333_333,
    };
    snap.set(Phase::RowStep, agg(4));
    snap.set(Phase::QueuePush, agg(120));
    snap.set(Phase::QueuePop, agg(118));
    snap.set(Phase::Dispatch, agg(60));
    snap.set(Phase::TelemetryTick, agg(30));
    snap.set_counter(ProfCounter::EventsScheduled, 120);
    snap.set_counter(ProfCounter::EventsPopped, 118);
    snap.set_counter(ProfCounter::PeakQueueDepth, 9);
    snap.set_counter(ProfCounter::EventsRecorded, 240);
    snap.set_counter(ProfCounter::FleetWindows, 10);
    snap.set_counter(ProfCounter::FleetRowWindows, 30);
    snap.set_counter(ProfCounter::TraceCacheMisses, 1);
    snap.set_counter(ProfCounter::TraceCacheHits, 3);
    snap.set(Phase::ServeIteration, agg(24));
    snap.set(Phase::ServeKvAlloc, agg(48));
    snap.set(Phase::ServeSchedule, agg(24));
    snap.set_counter(ProfCounter::ServeKvPeakBlocks, 537);
    snap.set_counter(ProfCounter::ServePreemptions, 2);
    snap.set_counter(ProfCounter::ServePeakBatch, 12);

    let rendered = snap.to_prometheus();
    let golden = include_str!("golden/prof_metrics.prom");
    assert_eq!(rendered, golden);
    assert!(!rendered.contains("5555555") && !rendered.contains("4444444"));
}
