//! Observability-layer guarantees (ISSUE 1 acceptance criteria):
//!
//! * recording is *passive* — attaching a recorder at any level must
//!   not perturb simulation results (same seed ⇒ same
//!   `PolicyOutcome`),
//! * the event log is *deterministic* — with a fixed seed, two runs
//!   emit byte-identical `events.jsonl` and Perfetto traces,
//! * the Chrome trace-event rendering has a stable, golden-file-pinned
//!   shape.

use polca::{OversubscriptionStudy, PolicyKind, PolicyOutcome};
use polca_obs::{Event, ObsLevel, Recorder};
use proptest::prelude::*;

/// Runs the quick-demo study under `kind` with the given recorder.
fn run_with(seed: u64, kind: PolicyKind, recorder: Recorder) -> (PolicyOutcome, Recorder) {
    let mut study = OversubscriptionStudy::quick_demo(seed);
    study.set_recorder(recorder.clone());
    (study.run(kind, 0.30, 1.0), recorder)
}

fn assert_outcomes_identical(a: &PolicyOutcome, b: &PolicyOutcome) {
    assert_eq!(a.kind, b.kind);
    assert_eq!(a.brake_engagements, b.brake_engagements);
    assert_eq!(a.counts, b.counts);
    assert_eq!(a.commands_issued, b.commands_issued);
    for (qa, qb) in [
        (&a.low_normalized, &b.low_normalized),
        (&a.high_normalized, &b.high_normalized),
        (&a.low_raw, &b.low_raw),
        (&a.high_raw, &b.high_raw),
    ] {
        assert_eq!(qa.count, qb.count);
        assert_eq!(qa.p50, qb.p50);
        assert_eq!(qa.p90, qb.p90);
        assert_eq!(qa.p99, qb.p99);
        assert_eq!(qa.min, qb.min);
        assert_eq!(qa.max, qb.max);
        assert_eq!(qa.mean, qb.mean);
    }
    assert_eq!(a.peak_utilization, b.peak_utilization);
    assert_eq!(a.mean_utilization, b.mean_utilization);
    assert_eq!(a.low_throughput_norm, b.low_throughput_norm);
    assert_eq!(a.high_throughput_norm, b.high_throughput_norm);
    assert_eq!(a.slo.met, b.slo.met);
    assert_eq!(a.row_power.values(), b.row_power.values());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Observation is passive: a fully-instrumented run and an
    /// uninstrumented run of the same seeded study are outcome-equal.
    #[test]
    fn recording_never_perturbs_outcomes(seed in 0u64..1000) {
        let (off, _) = run_with(seed, PolicyKind::Polca, Recorder::disabled());
        let (on, rec) = run_with(seed, PolicyKind::Polca, Recorder::new(ObsLevel::Full));
        assert_outcomes_identical(&off, &on);
        // And the instrumented run actually observed something.
        let artifacts = rec.artifacts();
        prop_assert!(!artifacts.events.is_empty());
        prop_assert!(!artifacts.metrics.is_empty());
    }
}

#[test]
fn event_log_is_byte_identical_across_runs() {
    let (_, rec1) = run_with(11, PolicyKind::Polca, Recorder::new(ObsLevel::Full));
    let (_, rec2) = run_with(11, PolicyKind::Polca, Recorder::new(ObsLevel::Full));
    let (a, b) = (rec1.artifacts(), rec2.artifacts());
    assert!(!a.events.is_empty());
    assert_eq!(a.events_jsonl(), b.events_jsonl());
    assert_eq!(a.chrome_trace_json(), b.chrome_trace_json());
    assert_eq!(a.metrics_json(), b.metrics_json());
    assert_eq!(a.power_csv(), b.power_csv());
    assert_eq!(a.latency_csv(), b.latency_csv());
}

#[test]
fn instrumented_run_emits_the_advertised_event_taxonomy() {
    let (outcome, rec) = run_with(7, PolicyKind::NoCap, Recorder::new(ObsLevel::Events));
    let kinds: std::collections::BTreeSet<&str> =
        rec.artifacts().events.iter().map(|e| e.kind()).collect();
    assert!(kinds.contains("request_dispatched"), "kinds: {kinds:?}");
    assert!(kinds.contains("request_completed"), "kinds: {kinds:?}");
    assert!(kinds.contains("power_sample"), "kinds: {kinds:?}");
    // The power series in the artifacts matches the outcome's record.
    let csv_lines = rec.artifacts().power_csv().lines().count() - 1;
    assert_eq!(csv_lines, outcome.row_power.len());
}

/// Golden-file pin of the Chrome trace-event JSON shape: a hand-built
/// event list must render exactly as `tests/golden/chrome_trace.json`.
/// Regenerate deliberately (and review the diff in Perfetto) if the
/// format changes.
#[test]
fn chrome_trace_matches_golden_file() {
    let events = vec![
        Event::PowerSample {
            t: 0.0,
            watts: 100_000.0,
        },
        Event::RequestDispatched {
            t: 0.5,
            server: 0,
            request: 1,
            priority: "high",
        },
        Event::CapApplied {
            t: 1.0,
            server: 0,
            mhz: 1110.0,
        },
        Event::RequestCompleted {
            t: 1.5,
            server: 0,
            request: 1,
            priority: "high",
            latency_s: 1.0,
        },
        Event::BrakeEngaged {
            t: 2.0,
            server: 1,
            on: true,
        },
        Event::BrakeEngaged {
            t: 2.5,
            server: 1,
            on: false,
        },
        Event::Uncap { t: 3.0, server: 0 },
    ];
    let rendered = polca_obs::chrome::trace_json(&events);
    let golden = include_str!("golden/chrome_trace.json");
    assert_eq!(rendered, golden);
}
