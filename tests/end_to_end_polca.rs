//! End-to-end integration tests for the POLCA oversubscription pipeline:
//! production trace synthesis → replication → cluster simulation →
//! policy evaluation → SLO checking, spanning every crate in the
//! workspace.

use polca::{OversubscriptionStudy, PolcaPolicy, PolicyKind};
use polca_cluster::RowConfig;

fn study(days: f64, seed: u64) -> OversubscriptionStudy {
    OversubscriptionStudy::new(
        RowConfig::paper_inference_row(),
        PolcaPolicy::default(),
        days,
        seed,
    )
}

#[test]
fn headline_result_thirty_percent_more_servers_zero_brakes() {
    // §6.5/§6.6: with T1=80 %, T2=89 %, POLCA hosts 30 % more servers
    // under the unchanged row budget, meets every Table 6 SLO and never
    // fires the power brake.
    let mut s = study(2.0, 11);
    let o = s.run(PolicyKind::Polca, 0.30, 1.0);
    assert_eq!(o.brake_engagements, 0, "POLCA must avoid power brakes");
    assert!(o.slo.met, "SLO violations: {:?}", o.slo.violations);
    assert!(o.peak_utilization <= 1.0, "peak {}", o.peak_utilization);
    assert!(
        o.low_throughput_norm > 0.98 && o.high_throughput_norm > 0.98,
        "throughput loss must be minor: {} / {}",
        o.low_throughput_norm,
        o.high_throughput_norm
    );
}

#[test]
fn baselines_brake_where_polca_does_not() {
    // Figure 18's ordering: POLCA has the fewest brake events.
    let mut s = study(2.0, 11);
    s.set_record_power(false);
    let polca = s.run(PolicyKind::Polca, 0.30, 1.0).brake_engagements;
    let no_cap = s.run(PolicyKind::NoCap, 0.30, 1.0).brake_engagements;
    let one_lp = s
        .run(PolicyKind::OneThreshLowPri, 0.30, 1.0)
        .brake_engagements;
    assert_eq!(polca, 0);
    assert!(no_cap > 0, "No-cap must hit the UPS brake at +30 %");
    assert!(polca <= one_lp, "POLCA must not brake more than 1-Thresh");
    assert!(one_lp < no_cap, "capping must reduce brakes vs No-cap");
}

#[test]
fn power_drift_scenario_keeps_polca_most_robust() {
    // §6.6 "+5 % more power-intensive workloads": POLCA incurs the least
    // brake events of all policies.
    let mut s = study(2.0, 13);
    s.set_record_power(false);
    let mut counts = Vec::new();
    for kind in PolicyKind::all() {
        counts.push((kind, s.run(kind, 0.30, 1.05).brake_engagements));
    }
    let polca = counts[0].1;
    for &(kind, brakes) in &counts[1..] {
        assert!(
            polca <= brakes,
            "POLCA ({polca}) should brake no more than {} ({brakes})",
            kind.name()
        );
    }
}

#[test]
fn oversubscribing_raises_power_utilization() {
    // The point of the exercise: the same budget does more work.
    let mut s = study(1.0, 17);
    let base = s.run(PolicyKind::NoCap, 0.0, 1.0);
    let over = s.run(PolicyKind::Polca, 0.30, 1.0);
    assert!(over.mean_utilization > base.mean_utilization * 1.1);
    assert!(over.counts.1 > (base.counts.1 as f64 * 1.2) as u64);
}

#[test]
fn trained_thresholds_reproduce_the_paper_operating_point() {
    let s = study(2.0, 17);
    let trainer = s.trained_thresholds();
    let t1 = trainer.t1();
    let t2 = trainer.t2();
    assert!((0.76..=0.84).contains(&t1), "t1 {t1}");
    assert!((0.85..=0.93).contains(&t2), "t2 {t2}");
}

#[test]
fn runs_are_deterministic_across_identical_studies() {
    let mut a = study(0.5, 3);
    let mut b = study(0.5, 3);
    let oa = a.run(PolicyKind::Polca, 0.30, 1.0);
    let ob = b.run(PolicyKind::Polca, 0.30, 1.0);
    assert_eq!(oa.counts, ob.counts);
    assert_eq!(oa.brake_engagements, ob.brake_engagements);
    assert_eq!(oa.low_raw.p99, ob.low_raw.p99);
    assert_eq!(oa.peak_utilization, ob.peak_utilization);
}

#[test]
fn deeper_oversubscription_eventually_brakes() {
    // Figure 13: the brake wall exists; POLCA cannot stretch forever.
    let mut s = study(1.0, 5);
    s.set_record_power(false);
    let modest = s.run(PolicyKind::Polca, 0.20, 1.0);
    let extreme = s.run(PolicyKind::Polca, 0.60, 1.0);
    assert_eq!(modest.brake_engagements, 0);
    assert!(
        extreme.brake_engagements > 0,
        "+60 % must exceed what capping can absorb"
    );
}
