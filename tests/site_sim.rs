//! Site-simulator refactor guarantees (ISSUE 9 acceptance criteria):
//!
//! * `--fleet-threads K` is invisible in every artifact: a site
//!   stepped on 4 worker threads produces byte-identical
//!   `events.jsonl`, `requests.jsonl`, `metrics.prom`, and
//!   `incidents.jsonl` to the same site stepped sequentially, at any
//!   seed — even with budget enforcement injecting brake commands
//!   mid-run,
//! * a 1-datacenter [`SiteSim`] is a bit-identical re-packaging of
//!   the pre-refactor [`FleetSim`] path,
//! * hierarchy budget math: a parent-level `BudgetViolation` is never
//!   emitted unless the sum of its children's powers at that sample
//!   actually exceeds the parent cap, for randomized site shapes.

use polca::{PolcaController, PolcaPolicy};
use polca_cluster::{FleetConfig, FleetSim, Request, RowConfig, SiteConfig, SiteSim};
use polca_obs::{Event, ObsLevel, Recorder, ReqTraceConfig};
use polca_sim::SimTime;
use polca_telemetry::{merge_tick_columns, RowPowerTaps, RowTickBuffer};
use polca_trace::{ArrivalGenerator, TraceConfig};
use polca_watch::{WatchConfig, WatchPlane};
use proptest::prelude::*;

/// A small row so the proptest cases stay fast.
fn small_row() -> RowConfig {
    let mut row = RowConfig::paper_inference_row();
    row.base_servers = 6;
    row
}

/// A dense 20-minute synthetic arrival stream.
fn arrivals(seed: u64) -> Vec<Request> {
    let config = TraceConfig::paper_mix(seed, SimTime::from_mins(20.0)).scaled(0.1);
    ArrivalGenerator::new(&config).collect()
}

const HORIZON: f64 = 20.0 * 60.0 + 600.0;

/// One full site run at `threads` workers: a 2 × 2 site with tight
/// enforced budgets (so OOB brake commands are injected mid-run) and
/// a buffering watch tap. Returns every artifact surface the
/// determinism contract covers.
struct SiteRun {
    site_events: String,
    site_prom: String,
    row_events: Vec<String>,
    row_requests: Vec<String>,
    incidents: Vec<String>,
}

fn run_site(seed: u64, threads: usize) -> SiteRun {
    let recorder = Recorder::new(ObsLevel::Full).with_req_trace(ReqTraceConfig { sample: 1 });
    let row = small_row();
    let mut site = SiteConfig {
        datacenters: 2,
        rows_per_datacenter: 2,
        rows_per_pdu: 2,
        // Tight caps at every level so enforcement engages and
        // releases repeatedly during the run.
        pdu_budget_watts: Some(row.provisioned_watts() * 1.1),
        datacenter_budget_watts: Some(row.provisioned_watts() * 1.4),
        site_budget_watts: Some(row.provisioned_watts() * 2.6),
        enforce_budgets: true,
        threads,
        ..SiteConfig::default()
    };
    site.base.seed = seed;
    site.base.recorder = recorder.clone();
    let buffer = RowTickBuffer::new(4);
    let mut taps = RowPowerTaps::new();
    taps.subscribe(buffer.clone());
    site.base.oob_taps = taps;
    let policy = PolcaPolicy::default();
    let until = SimTime::from_secs(HORIZON);
    let report = SiteSim::new(
        row.clone(),
        site,
        |_, rec| PolcaController::new(policy.clone()).with_recorder(rec.clone()),
        arrivals(seed).into_iter(),
        until,
    )
    .run();

    // Per-datacenter watch replay in canonical row order (what the
    // CLI's `--watch` fleet path does).
    let incidents = (0..report.datacenters)
        .map(|d| {
            let columns: Vec<_> = report
                .rows_in_datacenter(d)
                .map(|r| buffer.take_row(r))
                .collect();
            let plane = WatchPlane::new(WatchConfig::new(2.0 * row.provisioned_watts()));
            let sub = plane.subscriber();
            for tick in merge_tick_columns(&columns) {
                sub.on_tick(tick.t, tick.truth_watts, tick.observed_watts);
            }
            plane.finalize(until).incidents_jsonl()
        })
        .collect();

    SiteRun {
        site_events: recorder.artifacts().events_jsonl(),
        site_prom: recorder.artifacts().metrics_prometheus(),
        row_events: report
            .row_recorders
            .iter()
            .map(|r| r.artifacts().events_jsonl())
            .collect(),
        row_requests: report
            .row_recorders
            .iter()
            .map(|r| r.artifacts().requests_jsonl())
            .collect(),
        incidents,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Tentpole invariant: the worker-pool schedule is invisible —
    /// every artifact byte matches between sequential and 4-thread
    /// stepping, with enforcement brakes firing mid-run.
    #[test]
    fn parallel_site_artifacts_are_byte_identical(seed in 0u64..500) {
        let seq = run_site(seed, 1);
        let par = run_site(seed, 4);
        prop_assert!(!seq.site_events.is_empty());
        prop_assert_eq!(&seq.site_events, &par.site_events);
        prop_assert_eq!(&seq.site_prom, &par.site_prom);
        for i in 0..seq.row_events.len() {
            prop_assert!(!seq.row_events[i].is_empty());
            prop_assert_eq!(&seq.row_events[i], &par.row_events[i]);
            prop_assert_eq!(&seq.row_requests[i], &par.row_requests[i]);
        }
        prop_assert_eq!(&seq.incidents, &par.incidents);
    }

    /// A 1-datacenter site is the pre-refactor fleet, bit for bit.
    #[test]
    fn one_datacenter_site_matches_the_fleet_wrapper(seed in 0u64..500) {
        let site_rec = Recorder::new(ObsLevel::Events);
        let mut site = FleetConfig::with_rows(2).into_site();
        site.rows_per_pdu = 2;
        site.enforce_budgets = true;
        site.base.seed = seed;
        site.base.recorder = site_rec.clone();
        let policy = PolcaPolicy::default();
        let site_report = SiteSim::new(
            small_row(),
            site,
            |_, rec| PolcaController::new(policy.clone()).with_recorder(rec.clone()),
            arrivals(seed).into_iter(),
            SimTime::from_secs(HORIZON),
        )
        .run();

        let legacy_rec = Recorder::new(ObsLevel::Events);
        let mut cfg = FleetConfig::with_rows(2);
        cfg.rows_per_pdu = 2;
        cfg.enforce_budgets = true;
        cfg.base.seed = seed;
        cfg.base.recorder = legacy_rec.clone();
        let legacy = FleetSim::new(
            small_row(),
            cfg,
            |_, rec| PolcaController::new(policy.clone()).with_recorder(rec.clone()),
            arrivals(seed).into_iter(),
            SimTime::from_secs(HORIZON),
        )
        .run();
        prop_assert_eq!(legacy.rows.len(), site_report.rows.len());
        for (a, b) in legacy.rows.iter().zip(&site_report.rows) {
            prop_assert_eq!(a.offered, b.offered);
            prop_assert_eq!(a.completed, b.completed);
            prop_assert_eq!(a.peak_row_watts, b.peak_row_watts);
            prop_assert_eq!(a.brake_engagements, b.brake_engagements);
        }
        prop_assert_eq!(legacy.fleet_brake_engagements, site_report.fleet_brake_engagements);
        prop_assert_eq!(legacy.datacenter_peak_watts, site_report.datacenter_peak_watts[0]);
        let legacy_events = legacy_rec.artifacts().events_jsonl();
        prop_assert!(!legacy_events.is_empty());
        prop_assert_eq!(legacy_events, site_rec.artifacts().events_jsonl());
    }

    /// Hierarchy budget math: a parent violation is only ever emitted
    /// when its children's summed power at that sample exceeds the
    /// parent cap — across randomized site shapes.
    #[test]
    fn parent_violations_require_child_sums_over_cap(
        seed in 0u64..500,
        datacenters in 1usize..4,
        rows_per_dc in 1usize..4,
        rows_per_pdu in 1usize..3,
    ) {
        let recorder = Recorder::new(ObsLevel::Events);
        let row = small_row();
        let mut site = SiteConfig {
            datacenters,
            rows_per_datacenter: rows_per_dc,
            rows_per_pdu,
            // Caps far below what even lightly loaded rows draw, so
            // violations occur at every shape.
            pdu_budget_watts: Some(row.provisioned_watts() * 0.5),
            datacenter_budget_watts: Some(row.provisioned_watts() * 0.5 * rows_per_dc as f64),
            site_budget_watts: Some(
                row.provisioned_watts() * 0.5 * (rows_per_dc * datacenters) as f64,
            ),
            ..SiteConfig::default()
        };
        site.base.seed = seed;
        site.base.recorder = recorder.clone();
        let policy = PolcaPolicy::default();
        let hierarchy = site.hierarchy(row.provisioned_watts());
        let report = SiteSim::new(
            row,
            site,
            |_, rec| PolcaController::new(policy.clone()).with_recorder(rec.clone()),
            arrivals(seed).into_iter(),
            SimTime::from_secs(HORIZON),
        )
        .run();
        prop_assert_eq!(report.rows.len(), datacenters * rows_per_dc);

        // Reconstruct each boundary sample's per-row powers from the
        // event stream, then check every violation's roll-up.
        let events = recorder.artifacts().events;
        let mut row_watts = vec![0.0f64; datacenters * rows_per_dc];
        let mut sample_t = f64::NAN;
        let mut violations = 0u64;
        for event in &events {
            match event {
                Event::FleetPowerSample { t, row, watts } => {
                    sample_t = *t;
                    row_watts[*row] = *watts;
                }
                Event::BudgetViolation { t, scope, unit, watts, budget_watts } => {
                    prop_assert_eq!(*t, sample_t, "violation outside a boundary sample");
                    let child_sum: f64 = match *scope {
                        "pdu" => hierarchy.rows_in_pdu(*unit).map(|r| row_watts[r]).sum(),
                        "datacenter" => {
                            hierarchy.rows_in_datacenter(*unit).map(|r| row_watts[r]).sum()
                        }
                        "site" => hierarchy.datacenter_powers(&row_watts).iter().sum(),
                        other => {
                            prop_assert!(false, "unknown scope {}", other);
                            unreachable!()
                        }
                    };
                    prop_assert!(
                        child_sum > *budget_watts,
                        "{scope} {unit} violation at t={t}: child sum {child_sum} \
                         within cap {budget_watts}"
                    );
                    // The reported watts are exactly the child roll-up.
                    prop_assert!((child_sum - watts).abs() <= f64::EPSILON * watts.abs());
                    violations += 1;
                }
                _ => {}
            }
        }
        prop_assert!(violations > 0, "caps this low must be violated");
    }
}
