//! Capacity planning: how many servers can this row really host?
//!
//! The deployment question behind the paper (§1, §6.5): given an
//! existing row and its power trace, (1) train capping thresholds from
//! history, (2) sweep added-server fractions, and (3) report the largest
//! oversubscription that still meets the Table 6 SLOs with zero power
//! brakes — the paper's Figure 13 workflow condensed into a planner.
//!
//! Run with `cargo run --release --example capacity_planner`.
//! `POLCA_DAYS` (default 3) controls the evaluation trace length.

use polca::{OversubscriptionStudy, PolcaPolicy, PolicyKind};
use polca_cluster::RowConfig;

fn main() {
    let days: f64 = std::env::var("POLCA_DAYS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);
    let row = RowConfig::paper_inference_row();
    println!(
        "derating check (§5): rated {:.1} kW/server, observed peak {:.2} kW \
         ⇒ reclaim {:.0} W per server",
        row.server_spec.provisioned_watts / 1000.0,
        row.server_spec.peak_power_watts() / 1000.0,
        row.server_spec.derating_headroom_watts()
    );

    let mut study = OversubscriptionStudy::new(row, PolcaPolicy::default(), days, 23);
    let trainer = study.trained_thresholds();
    println!(
        "thresholds trained from history: T1 {:.0} %, T2 {:.0} % \
         (max 40 s spike {:.1} %, peak util {:.1} %)",
        trainer.t1() * 100.0,
        trainer.t2() * 100.0,
        trainer.max_spike_40s_frac * 100.0,
        trainer.peak_utilization * 100.0
    );
    study.set_policy(trainer.train());
    study.set_record_power(false);

    println!(
        "\n{:>7} {:>8} {:>7} {:>7} {:>7} {:>7} {:>6}",
        "added%", "servers", "brakes", "LP p99", "HP p99", "peak%", "SLO"
    );
    let mut best = 0.0;
    for pct in [0u32, 10, 20, 25, 30, 35, 40, 45] {
        let added = pct as f64 / 100.0;
        let o = study.run(PolicyKind::Polca, added, 1.0);
        let servers = study
            .row()
            .clone()
            .with_added_servers(added)
            .total_servers();
        println!(
            "{:>7} {:>8} {:>7} {:>7.3} {:>7.3} {:>7.1} {:>6}",
            pct,
            servers,
            o.brake_engagements,
            o.low_normalized.p99,
            o.high_normalized.p99,
            o.peak_utilization * 100.0,
            if o.slo.met { "met" } else { "MISS" }
        );
        if o.slo.met && added > best {
            best = added;
        }
    }
    println!(
        "\nplanner verdict: deploy up to {:.0} % more servers in this row \
         without new power capacity.",
        best * 100.0
    );
}
