//! Quickstart: oversubscribe an LLM inference row with POLCA.
//!
//! Builds the paper's evaluation pipeline at demo scale — a 10-server
//! BLOOM-176B row, a production-shaped arrival trace — deploys 30 % more
//! servers under the same power budget, and checks the Table 6 SLOs.
//!
//! Run with `cargo run --release --example quickstart`.

use polca::{OversubscriptionStudy, PolicyKind};

fn main() {
    let mut study = OversubscriptionStudy::quick_demo(42);
    println!(
        "row: {} base servers, {:.0} kW provisioned, trace {:.1} h",
        study.row().base_servers,
        study.row().provisioned_watts() / 1000.0,
        study.days() * 24.0
    );

    let trainer = study.trained_thresholds();
    println!(
        "trained thresholds from history: T1 = {:.0} %, T2 = {:.0} % \
         (max 40 s spike {:.1} %)",
        trainer.t1() * 100.0,
        trainer.t2() * 100.0,
        trainer.max_spike_40s_frac * 100.0
    );

    println!("\nrunning POLCA with +30 % servers under the same budget…");
    let outcome = study.run(PolicyKind::Polca, 0.30, 1.0);

    println!(
        "requests: {} offered, {} completed, {} rejected",
        outcome.counts.0, outcome.counts.1, outcome.counts.2
    );
    println!(
        "peak power utilization: {:.1} % of provisioned (mean {:.1} %)",
        outcome.peak_utilization * 100.0,
        outcome.mean_utilization * 100.0
    );
    println!(
        "normalized latency   low-pri: p50 {:.3} p99 {:.3} | high-pri: p50 {:.3} p99 {:.3}",
        outcome.low_normalized.p50,
        outcome.low_normalized.p99,
        outcome.high_normalized.p50,
        outcome.high_normalized.p99
    );
    println!("power brake events: {}", outcome.brake_engagements);
    println!(
        "SLOs (Table 6): {}",
        if outcome.slo.met {
            "MET — 30 % more servers for free".to_string()
        } else {
            format!("VIOLATED: {:?}", outcome.slo.violations)
        }
    );
}
