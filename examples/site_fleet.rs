//! Site fleet: scale one row out to a multi-datacenter site.
//!
//! `--rows` (and [`RowConfig`]) sizes a single PDU-fed row — the
//! *bottom* of the power hierarchy. This example builds the level
//! above: a [`SiteSim`] owning 3 datacenters × 2 rows of demo-scale
//! servers, with budget caps at every level (PDU → datacenter → site)
//! and 20 % site-level oversubscription, then steps all six rows in
//! parallel inside one simulation. The worker-thread count never
//! changes the result — artifacts are byte-identical at `threads = 1`
//! and `threads = N` — so the parallelism is pure wall-clock upside.
//!
//! The CLI equivalent is
//! `polca-cli evaluate --rows 2 --datacenters 3 --oversub-site 20
//!  --enforce-budgets --fleet-threads 0`.
//!
//! Run with `cargo run --release --example site_fleet`.

use polca::{PolcaController, PolcaPolicy};
use polca_cluster::{RowConfig, SiteConfig, SiteSim};
use polca_sim::SimTime;
use polca_trace::{ArrivalGenerator, TraceConfig};

fn main() {
    // Demo-scale row: 6 DGX-A100 servers serving BLOOM-176B.
    let mut row = RowConfig::paper_inference_row();
    row.base_servers = 6;

    // 3 datacenters × 2 rows, one PDU per 2 rows. The site cap is
    // set by oversubscription: provisioned / 1.2, i.e. the site
    // admits 20 % more provisioned capacity than its feed can carry
    // — the paper's bet that rows never peak together.
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let site = SiteConfig {
        datacenters: 3,
        rows_per_datacenter: 2,
        rows_per_pdu: 2,
        site_oversubscription: Some(0.20),
        enforce_budgets: true,
        threads,
        ..SiteConfig::default()
    };

    let horizon = SimTime::from_mins(45.0);
    let trace = TraceConfig::paper_mix(7, SimTime::from_mins(30.0)).scaled(0.15);
    let requests: Vec<_> = ArrivalGenerator::new(&trace).collect();

    println!(
        "site: 3 datacenters x 2 rows ({} servers total), {} worker thread(s)",
        6 * row.total_servers(),
        threads
    );
    println!(
        "replaying {} requests over {:.0} min...\n",
        requests.len(),
        45.0
    );

    let policy = PolcaPolicy::default();
    let report = SiteSim::new(
        row,
        site,
        |_, rec| PolcaController::new(policy.clone()).with_recorder(rec.clone()),
        requests.into_iter(),
        horizon,
    )
    .run();

    println!(
        "requests: {} offered, {} completed, {} rejected",
        report.offered(),
        report.completed(),
        report.rejected()
    );
    for d in 0..report.datacenters {
        println!(
            "datacenter {d}: peak {:.1} kW / budget {:.1} kW ({:.0} % utilized)",
            report.datacenter_peak_watts[d] / 1e3,
            report.datacenter_budget_watts / 1e3,
            report.datacenter_peak_utilization(d) * 100.0
        );
    }
    println!(
        "site: peak {:.2} MW / budget {:.2} MW ({:.0} % utilized, mean {:.2} MW)",
        report.site_peak_watts / 1e6,
        report.site_budget_watts / 1e6,
        report.site_peak_utilization() * 100.0,
        report.mean_site_watts() / 1e6
    );
    println!(
        "budget pressure: {} PDU / {} datacenter / {} site violation sample(s), \
         {} fleet brake engagement(s)",
        report.pdu_violation_samples,
        report.datacenter_violation_samples,
        report.site_violation_samples,
        report.fleet_brake_engagements
    );
}
