//! Full policy comparison at 30 % oversubscription (§6.6).
//!
//! Runs POLCA against the paper's three baselines — `1-Thresh-Low-Pri`,
//! `1-Thresh-All` and `No-cap` — over a one-week production-shaped trace
//! on the Table 2 row, both with nominal workloads and with the "+5 %
//! more power-intensive" drift scenario, and prints the Figure 17/18
//! summary.
//!
//! Run with `cargo run --release --example oversubscription_study`.
//! Set `POLCA_DAYS` to change the trace length (default 7).

use polca::{OversubscriptionStudy, PolcaPolicy, PolicyKind};
use polca_cluster::RowConfig;

fn main() {
    let days: f64 = std::env::var("POLCA_DAYS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7.0);
    let mut study = OversubscriptionStudy::new(
        RowConfig::paper_inference_row(),
        PolcaPolicy::default(),
        days,
        17,
    );
    println!(
        "row: {} servers (+30 % ⇒ {}), budget {:.0} kW, trace {days:.0} days",
        study.row().base_servers,
        study.row().clone().with_added_servers(0.3).total_servers(),
        study.row().provisioned_watts() / 1000.0
    );
    println!(
        "\n{:<22} {:>6} {:>7} {:>7} {:>7} {:>7} {:>7} {:>6}",
        "policy", "brakes", "LP p50", "LP p99", "HP p50", "HP p99", "peak%", "SLO"
    );
    for power_scale in [1.0, 1.05] {
        let suffix = if power_scale > 1.0 { "+5%" } else { "" };
        for kind in PolicyKind::all() {
            let o = study.run(kind, 0.30, power_scale);
            println!(
                "{:<22} {:>6} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.1} {:>6}",
                format!("{}{}", kind.name(), suffix),
                o.brake_engagements,
                o.low_normalized.p50,
                o.low_normalized.p99,
                o.high_normalized.p50,
                o.high_normalized.p99,
                o.peak_utilization * 100.0,
                if o.slo.met { "met" } else { "MISS" }
            );
        }
    }
    println!(
        "\nPOLCA meets the Table 6 SLOs with zero power brakes while the\n\
         baselines either brake (No-cap, 1-Thresh-*) or cap high-priority\n\
         work harder than necessary (1-Thresh-All)."
    );
}
