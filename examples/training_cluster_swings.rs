//! Training-side characterization (§4.1, §4.3, Table 4).
//!
//! Profiles the three training-lineup models at the server level —
//! iteration power swings, power capping vs frequency locking — and then
//! scales up to a synchronized 40-server training row to show why
//! training clusters leave almost no oversubscription headroom.
//!
//! Run with `cargo run --release --example training_cluster_swings`.

use polca_cluster::TrainingCluster;
use polca_gpu::{DvfsModel, Gpu, GpuSpec};
use polca_llm::{ModelSpec, TrainingJob};

fn main() {
    let tdp = GpuSpec::a100_80gb().tdp_watts;

    println!("server-level fine-tuning (Figure 4):");
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>12}",
        "model", "iter(s)", "peak/TDP", "trough/TDP", "swing (W/GPU)"
    );
    for model in ModelSpec::training_lineup() {
        let job = TrainingJob::fine_tuning(&model);
        let mut gpu = Gpu::new(GpuSpec::a100_80gb());
        let ts = job.power_series(&mut gpu, 5, 0.01);
        let (peak, trough) = (ts.peak().unwrap(), ts.trough().unwrap());
        println!(
            "{:<10} {:>8.1} {:>10.2} {:>10.2} {:>12.0}",
            model.name,
            job.iteration_time_s(),
            peak / tdp,
            trough / tdp,
            peak - trough
        );
    }

    println!("\ncapping knobs on Flan-T5 (Figure 4/5):");
    let job = TrainingJob::fine_tuning(&ModelSpec::flan_t5_xxl());
    let mut free = Gpu::new(GpuSpec::a100_80gb());
    let base = job.power_series(&mut free, 3, 0.01);
    let mut capped = Gpu::new(GpuSpec::a100_80gb());
    capped.set_power_cap(325.0).unwrap();
    let cap_ts = job.power_series(&mut capped, 3, 0.01).resample_mean(0.1);
    let mut locked = Gpu::new(GpuSpec::a100_80gb());
    locked.lock_clock(1110.0).unwrap();
    let lock_ts = job.power_series(&mut locked, 3, 0.01);
    let dvfs = DvfsModel::default();
    println!(
        "  no cap     : peak {:.2} TDP, trough {:.2} TDP",
        base.peak().unwrap() / tdp,
        base.trough().unwrap() / tdp
    );
    println!(
        "  325 W cap  : peak {:.2} TDP, trough {:.2} TDP  (clips peaks, keeps troughs)",
        cap_ts.peak().unwrap() / tdp,
        cap_ts.trough().unwrap() / tdp
    );
    println!(
        "  1.1 GHz    : peak {:.2} TDP, throughput {:.1} % (lowers everything)",
        lock_ts.peak().unwrap() / tdp,
        job.throughput_scale(&dvfs, 1110.0 / 1410.0) * 100.0
    );

    println!("\ncluster scale (Table 4, training column):");
    let cluster = TrainingCluster::paper_training_row();
    let row = cluster.row_power_series(300.0, 0.1, 7);
    let provisioned = cluster.provisioned_watts();
    println!(
        "  {} synchronized servers, {:.0} kW provisioned",
        cluster.servers(),
        provisioned / 1000.0
    );
    println!(
        "  peak utilization {:.1} %  (headroom only {:.1} %)",
        row.peak().unwrap() / provisioned * 100.0,
        (1.0 - row.peak().unwrap() / provisioned) * 100.0
    );
    println!(
        "  max swing within 2 s: {:.1} % of provisioned power",
        row.max_rise_within(2.0).unwrap() / provisioned * 100.0
    );
    println!(
        "\nInsight 9: coordinated training swings leave ~3 % headroom, so\n\
         power oversubscription belongs in inference clusters instead."
    );
}
